use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::{LinalgError, Vector};

/// A dense, row-major matrix of `f64` values.
///
/// Sized for the Gaussian-process workloads in this repository: covariance
/// matrices of a few hundred rows. All storage is a single contiguous
/// `Vec<f64>`; element `(i, j)` lives at `i * cols + j`.
///
/// # Example
///
/// ```
/// use easybo_linalg::Matrix;
///
/// # fn main() -> Result<(), easybo_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// ```
    /// use easybo_linalg::Matrix;
    /// let i = Matrix::identity(3);
    /// assert_eq!(i[(1, 1)], 1.0);
    /// assert_eq!(i[(1, 2)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::RaggedRows`] if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> crate::Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(LinalgError::RaggedRows {
                    first: ncols,
                    row: i,
                    len: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> crate::Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: format!("{rows}x{cols} = {} entries", rows * cols),
                actual: format!("{} entries", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(i, j)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a symmetric `n x n` matrix by evaluating `f(i, j)` only on the
    /// lower triangle (`j <= i`) and mirroring — half the kernel evaluations
    /// of [`Matrix::from_fn`] for symmetric builders.
    pub fn symmetric_from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = f(i, j);
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vector {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        Vector::from_iter((0..self.rows).map(|i| self[(i, j)]))
    }

    /// Flat row-major view of the underlying data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &Vector) -> Vector {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec: vector length {} does not match matrix cols {}",
            x.len(),
            self.cols
        );
        let xs = x.as_slice();
        Vector::from_iter((0..self.rows).map(|i| {
            self.row(i)
                .iter()
                .zip(xs.iter())
                .map(|(a, b)| a * b)
                .sum::<f64>()
        }))
    }

    /// Matrix-matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions {} and {} differ",
            self.cols, other.rows
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps inner accesses contiguous for row-major data.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, b) in orow.iter_mut().zip(brow.iter()) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// Adds `value` to every diagonal entry in place.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, value: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += value;
        }
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Elementwise `sum(self .* other)` — the trace of `self^T other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn frobenius_dot(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "frobenius_dot shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols` (unless the matrix is empty, in which
    /// case the row defines the column count).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(
            row.len(),
            self.cols,
            "push_row: row length {} does not match cols {}",
            row.len(),
            self.cols
        );
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Returns `self` scaled by `alpha`.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * alpha).collect(),
        }
    }

    /// Shrinks a square matrix to its leading `k`×`k` block in place.
    ///
    /// The surviving entries are moved, not recomputed, so the result is
    /// bitwise identical to the original leading block — this is what lets
    /// a Cholesky factor grown with [`crate::Cholesky::extend`] be restored
    /// exactly when trailing pseudo-points are popped.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `k > rows`.
    pub fn truncate_square(&mut self, k: usize) {
        assert!(self.is_square(), "truncate_square: matrix is not square");
        assert!(k <= self.rows, "truncate_square: {k} > {}", self.rows);
        let old = self.cols;
        for i in 1..k {
            self.data.copy_within(i * old..i * old + k, i * k);
        }
        self.data.truncate(k * k);
        self.rows = k;
        self.cols = k;
    }

    /// Cheap necessary-condition check for symmetric positive definiteness:
    /// square, finite, strictly positive diagonal, symmetric, and every
    /// off-diagonal entry within the Cauchy–Schwarz bound
    /// `a_ij^2 <= a_ii * a_jj` (up to a small relative tolerance).
    ///
    /// This cannot *prove* positive definiteness (only a factorization can),
    /// but any well-formed covariance matrix passes, so it makes a useful
    /// `debug_assert!` guard on the GP hot path: a failure means the kernel
    /// produced something that was never going to factorize, and the jitter
    /// ladder is about to paper over a real bug.
    pub fn is_spd_hint(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        if !self.data.iter().all(|v| v.is_finite()) {
            return false;
        }
        for i in 0..self.rows {
            if self[(i, i)] <= 0.0 {
                return false;
            }
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let aij = self[(i, j)];
                if (aij - self[(j, i)]).abs() > 1e-8 * aij.abs().max(1.0) {
                    return false;
                }
                let bound = self[(i, i)] * self[(j, j)];
                if aij * aij > bound * (1.0 + 1e-9) {
                    return false;
                }
            }
        }
        true
    }

    /// Checks that the matrix is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Checks every entry is finite.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NonFinite`] naming `context` if any entry is
    /// NaN or infinite.
    pub fn ensure_finite(&self, context: &str) -> crate::Result<()> {
        if self.data.iter().all(|v| v.is_finite()) {
            Ok(())
        } else {
            Err(LinalgError::NonFinite {
                context: context.to_string(),
            })
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scaled(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn shape_accessors() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(!m.is_square());
        assert!(Matrix::identity(2).is_square());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn indexing_is_row_major() {
        let m = sample();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn row_and_col_views() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1).as_slice(), &[2.0, 5.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = sample();
        let x = Vector::from(vec![1.0, 0.0, -1.0]);
        assert_eq!(m.matvec(&x).as_slice(), &[-2.0, -2.0]);
    }

    #[test]
    fn matmul_against_identity() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3), m);
        let i2 = Matrix::identity(2);
        assert_eq!(i2.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn add_diagonal_and_trace() {
        let mut m = Matrix::identity(3);
        m.add_diagonal(2.0);
        assert_eq!(m.trace(), 9.0);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    #[should_panic(expected = "push_row")]
    fn push_row_wrong_width_panics() {
        let mut m = Matrix::zeros(1, 3);
        m.push_row(&[1.0]);
    }

    #[test]
    fn truncate_square_keeps_leading_block_bitwise() {
        let m = Matrix::from_fn(5, 5, |i, j| ((i * 7 + j * 3) as f64 * 0.31).sin());
        let mut t = m.clone();
        t.truncate_square(3);
        assert_eq!(t.shape(), (3, 3));
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t[(i, j)].to_bits(), m[(i, j)].to_bits());
            }
        }
        let mut z = m.clone();
        z.truncate_square(0);
        assert_eq!(z.shape(), (0, 0));
        let mut full = m.clone();
        full.truncate_square(5);
        assert_eq!(full, m);
    }

    #[test]
    #[should_panic(expected = "truncate_square")]
    fn truncate_square_rejects_growth() {
        Matrix::identity(2).truncate_square(3);
    }

    #[test]
    fn spd_hint_accepts_covariance_shapes() {
        // A well-formed kernel matrix: symmetric, unit-ish diagonal,
        // off-diagonals below the Cauchy–Schwarz bound.
        let k = Matrix::symmetric_from_fn(4, |i, j| {
            if i == j {
                1.5
            } else {
                1.2 * (-0.5 * ((i as f64 - j as f64).powi(2))).exp()
            }
        });
        assert!(k.is_spd_hint());
    }

    #[test]
    fn spd_hint_rejects_malformed_matrices() {
        assert!(!Matrix::zeros(2, 3).is_spd_hint());
        // Zero diagonal.
        assert!(!Matrix::zeros(2, 2).is_spd_hint());
        // Non-finite entry.
        let mut nan = Matrix::identity(2);
        nan[(0, 1)] = f64::NAN;
        assert!(!nan.is_spd_hint());
        // Asymmetric.
        let asym = Matrix::from_rows(&[&[1.0, 0.5], &[0.1, 1.0]]).unwrap();
        assert!(!asym.is_spd_hint());
        // Cauchy–Schwarz violation: |a01| > sqrt(a00 * a11).
        let cs = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(!cs.is_spd_hint());
        // Hint only: this matrix passes every cheap test yet is indefinite.
        let sneaky =
            Matrix::from_rows(&[&[1.0, 0.9, -0.9], &[0.9, 1.0, 0.9], &[-0.9, 0.9, 1.0]]).unwrap();
        assert!(sneaky.is_spd_hint());
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]).unwrap();
        assert!(!a.is_symmetric(1e-12));
        assert!(!sample().is_symmetric(1.0));
    }

    #[test]
    fn frobenius_ops() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.frobenius_dot(&m), 25.0);
    }

    #[test]
    fn elementwise_add_sub_scale() {
        let a = Matrix::identity(2);
        let b = a.scaled(3.0);
        assert_eq!((&a + &b)[(0, 0)], 4.0);
        assert_eq!((&b - &a)[(1, 1)], 2.0);
        assert_eq!((&a * 5.0)[(0, 0)], 5.0);
    }

    #[test]
    fn symmetric_from_fn_mirrors_lower_triangle() {
        let mut evals = 0usize;
        let m = Matrix::symmetric_from_fn(4, |i, j| {
            evals += 1;
            assert!(j <= i, "builder must only see the lower triangle");
            (i * 10 + j) as f64
        });
        // n(n+1)/2 evaluations, not n².
        assert_eq!(evals, 10);
        assert!(m.is_symmetric(0.0));
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m[(1, 2)], 21.0);
        assert_eq!(Matrix::symmetric_from_fn(0, |_, _| 1.0).shape(), (0, 0));
    }

    #[test]
    fn as_mut_slice_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        m.as_mut_slice()[3] = 7.0;
        assert_eq!(m[(1, 1)], 7.0);
    }

    #[test]
    fn ensure_finite_flags_bad_entries() {
        let mut m = Matrix::identity(2);
        assert!(m.ensure_finite("k").is_ok());
        m[(0, 1)] = f64::INFINITY;
        assert!(m.ensure_finite("k").is_err());
    }

    #[test]
    fn display_contains_shape() {
        let s = format!("{}", Matrix::identity(2));
        assert!(s.contains("2x2"));
    }

    proptest! {
        #[test]
        fn prop_transpose_involution(
            rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000
        ) {
            let m = Matrix::from_fn(rows, cols, |i, j| {
                ((i * 31 + j * 17 + seed as usize) % 97) as f64 - 48.0
            });
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn prop_matmul_associative(n in 1usize..5, seed in 0u64..100) {
            let gen = |off: usize| {
                Matrix::from_fn(n, n, move |i, j| {
                    (((i * 7 + j * 13 + off + seed as usize) % 11) as f64 - 5.0) / 3.0
                })
            };
            let (a, b, c) = (gen(0), gen(3), gen(5));
            let left = a.matmul(&b).matmul(&c);
            let right = a.matmul(&b.matmul(&c));
            prop_assert!((&left - &right).frobenius_norm() < 1e-9);
        }

        #[test]
        fn prop_matvec_linear(n in 1usize..6, alpha in -3.0..3.0f64) {
            let m = Matrix::from_fn(n, n, |i, j| (i as f64 - j as f64) * 0.5 + 1.0);
            let x = Vector::from_iter((0..n).map(|i| i as f64 + 0.5));
            let lhs = m.matvec(&x.scaled(alpha));
            let rhs = m.matvec(&x).scaled(alpha);
            prop_assert!((&lhs - &rhs).norm() < 1e-9 * (1.0 + rhs.norm()));
        }
    }
}
