use std::error::Error;
use std::fmt;

/// Error type for all fallible linear algebra operations in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ///
    /// Carries `(expected, actual)` shape descriptions.
    ShapeMismatch {
        /// Shape the operation required.
        expected: String,
        /// Shape that was actually supplied.
        actual: String,
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Cholesky factorization failed even after the maximum jitter was added;
    /// the matrix is not (numerically) positive definite.
    NotPositiveDefinite {
        /// Pivot index where the factorization broke down.
        pivot: usize,
        /// Value of the failing diagonal pivot.
        value: f64,
    },
    /// Input rows had inconsistent lengths when building a matrix.
    RaggedRows {
        /// Length of the first row.
        first: usize,
        /// Index of the offending row.
        row: usize,
        /// Length of the offending row.
        len: usize,
    },
    /// A non-finite (NaN or infinite) value was encountered where finite
    /// input is required.
    NonFinite {
        /// Human-readable location of the offending value.
        context: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite (pivot {pivot} = {value:e})"
            ),
            LinalgError::RaggedRows { first, row, len } => write!(
                f,
                "ragged input rows: row 0 has {first} entries but row {row} has {len}"
            ),
            LinalgError::NonFinite { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            expected: "3x3".into(),
            actual: "2x3".into(),
        };
        assert_eq!(e.to_string(), "shape mismatch: expected 3x3, got 2x3");
    }

    #[test]
    fn display_not_square() {
        let e = LinalgError::NotSquare { rows: 2, cols: 5 };
        assert_eq!(e.to_string(), "matrix must be square, got 2x5");
    }

    #[test]
    fn display_not_positive_definite_mentions_pivot() {
        let e = LinalgError::NotPositiveDefinite {
            pivot: 3,
            value: -1.0,
        };
        let s = e.to_string();
        assert!(s.contains("positive definite"));
        assert!(s.contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
