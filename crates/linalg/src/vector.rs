use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::LinalgError;

/// A dense column vector of `f64` values.
///
/// `Vector` is a thin, owned wrapper over `Vec<f64>` providing the handful of
/// BLAS-1 style operations the Gaussian-process code needs (dot products,
/// norms, axpy) while keeping indexing ergonomic.
///
/// # Example
///
/// ```
/// use easybo_linalg::Vector;
///
/// let v = Vector::from(vec![3.0, 4.0]);
/// assert_eq!(v.norm(), 5.0);
/// assert_eq!(v.dot(&v), 25.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of length `n`.
    ///
    /// ```
    /// use easybo_linalg::Vector;
    /// let z = Vector::zeros(3);
    /// assert_eq!(z.len(), 3);
    /// assert_eq!(z.norm(), 0.0);
    /// ```
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector of length `n` filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Creates a vector from an iterator of values.
    // An inherent `from_iter` keeps existing `Vector::from_iter(..)` call
    // sites working alongside the `FromIterator` impl below.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying `Vec<f64>`.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Mutable iterator over elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot product of vectors with lengths {} and {}",
            self.len(),
            other.len()
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean distance to another vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn sq_dist(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "sq_dist length mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// In-place `self += alpha * x` (the BLAS `axpy` operation).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: f64, x: &Vector) {
        assert_eq!(self.len(), x.len(), "axpy length mismatch");
        for (s, xi) in self.data.iter_mut().zip(x.data.iter()) {
            *s += alpha * xi;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Returns a new vector with every element multiplied by `alpha`.
    pub fn scaled(&self, alpha: f64) -> Vector {
        Vector::from_iter(self.data.iter().map(|v| v * alpha))
    }

    /// Largest element, or `f64::NEG_INFINITY` when empty.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest element, or `f64::INFINITY` when empty.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Index of the largest element, or `None` when empty. NaN entries are
    /// skipped.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &v) in self.data.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Sum of elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Checks every element is finite.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NonFinite`] naming `context` if any element is
    /// NaN or infinite.
    pub fn ensure_finite(&self, context: &str) -> crate::Result<()> {
        if self.data.iter().all(|v| v.is_finite()) {
            Ok(())
        } else {
            Err(LinalgError::NonFinite {
                context: context.to_string(),
            })
        }
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector {
            data: data.to_vec(),
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector::from_iter(iter)
    }
}

impl Extend<f64> for Vector {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6}")?;
        }
        write!(f, "]")
    }
}

impl Add for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector add length mismatch");
        Vector::from_iter(self.iter().zip(rhs.iter()).map(|(a, b)| a + b))
    }
}

impl Sub for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector sub length mismatch");
        Vector::from_iter(self.iter().zip(rhs.iter()).map(|(a, b)| a - b))
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        Vector::from_iter(self.iter().map(|a| -a))
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        self.axpy(-1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_filled() {
        assert_eq!(Vector::zeros(4).as_slice(), &[0.0; 4]);
        assert_eq!(Vector::filled(2, 7.5).as_slice(), &[7.5, 7.5]);
    }

    #[test]
    fn dot_and_norm() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b), 4.0 - 10.0 + 18.0);
        assert!((a.norm() - 14f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "dot product")]
    fn dot_length_mismatch_panics() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        let _ = a.dot(&b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Vector::from(vec![1.0, 1.0]);
        let x = Vector::from(vec![2.0, -1.0]);
        a.axpy(3.0, &x);
        assert_eq!(a.as_slice(), &[7.0, -2.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn add_sub_assign() {
        let mut a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![0.5, 0.5]);
        a += &b;
        assert_eq!(a.as_slice(), &[1.5, 2.5]);
        a -= &b;
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn argmax_skips_nan() {
        let v = Vector::from(vec![1.0, f64::NAN, 3.0, 2.0]);
        assert_eq!(v.argmax(), Some(2));
        assert_eq!(Vector::zeros(0).argmax(), None);
    }

    #[test]
    fn min_max_sum() {
        let v = Vector::from(vec![-1.0, 4.0, 2.0]);
        assert_eq!(v.min(), -1.0);
        assert_eq!(v.max(), 4.0);
        assert_eq!(v.sum(), 5.0);
    }

    #[test]
    fn ensure_finite_detects_nan() {
        let v = Vector::from(vec![1.0, f64::NAN]);
        assert!(matches!(
            v.ensure_finite("test"),
            Err(LinalgError::NonFinite { .. })
        ));
        assert!(Vector::zeros(3).ensure_finite("test").is_ok());
    }

    #[test]
    fn collect_and_extend() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
        let mut w = v;
        w.extend([5.0]);
        assert_eq!(w.len(), 4);
        assert_eq!(w[3], 5.0);
    }

    #[test]
    fn display_formats_elements() {
        let v = Vector::from(vec![1.0, 2.5]);
        assert_eq!(format!("{v}"), "[1.000000, 2.500000]");
    }

    proptest! {
        #[test]
        fn prop_dot_commutative(a in proptest::collection::vec(-1e3..1e3f64, 1..20)) {
            let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
            let va = Vector::from(a);
            let vb = Vector::from(b);
            prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() <= 1e-9 * (1.0 + va.norm() * vb.norm()));
        }

        #[test]
        fn prop_norm_triangle_inequality(
            a in proptest::collection::vec(-1e3..1e3f64, 1..20)
        ) {
            let b: Vec<f64> = a.iter().rev().cloned().collect();
            let va = Vector::from(a);
            let vb = Vector::from(b);
            let sum = &va + &vb;
            prop_assert!(sum.norm() <= va.norm() + vb.norm() + 1e-9);
        }

        #[test]
        fn prop_sq_dist_matches_norm(a in proptest::collection::vec(-1e2..1e2f64, 1..16)) {
            let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
            let va = Vector::from(a);
            let vb = Vector::from(b);
            let d = (&va - &vb).norm();
            prop_assert!((va.sq_dist(&vb) - d * d).abs() < 1e-8 * (1.0 + d * d));
        }
    }
}
