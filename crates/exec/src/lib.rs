//! Evaluation executors for batch Bayesian optimization.
//!
//! The paper's central claim is about **wall-clock time**: synchronous batch
//! BO wastes hardware because every worker waits for the slowest simulation
//! in the batch, while EasyBO issues a new query the moment a worker idles
//! (§III-A, Fig. 1). Reproducing Tables I/II therefore needs faithful
//! schedule accounting, which this crate provides twice over:
//!
//! * [`VirtualExecutor`] — a deterministic discrete-event engine over a
//!   virtual clock. Simulation durations come from a parameter-dependent
//!   [`SimTimeModel`] (HSPICE runtimes vary with the design point); the
//!   sync/sequential/async drivers reproduce exactly the scheduling
//!   arithmetic of the paper's testbed in microseconds of real time.
//! * [`ThreadedExecutor`] — a real multi-threaded executor (crossbeam
//!   channels + OS threads) for production use of the library, where the
//!   black box is genuinely expensive.
//!
//! Selection logic stays out of this crate: drivers call back into
//! [`SyncBatchPolicy`] / [`AsyncPolicy`] implementations (provided by the
//! `easybo` core crate) whenever they need new query points.
//!
//! Real simulator pools also fail: jobs crash, hang, and return
//! non-convergent FOMs. Both executors therefore drive a shared
//! [`RetryPolicy`] (requeue with exponential backoff, per-attempt
//! timeouts, configurable handling of exhausted tasks), and the
//! [`fault`] module provides a seeded, fully deterministic
//! fault-injection wrapper ([`FaultyBlackBox`]) for chaos-testing the
//! whole stack.

mod blackbox;
mod dataset;
mod fanout;
pub mod fault;
mod retry;
mod schedule;
mod session;
mod sim_time;
mod threaded;
mod trace;
mod virtual_exec;

pub use blackbox::{AttemptContext, BlackBox, CostedFunction, EvalOutcome, Evaluation};
pub use dataset::{BusyPoint, Dataset};
pub use fanout::FanOutBlackBox;
pub use fault::{FaultPlan, FaultyBlackBox};
pub use retry::{FailureAction, RetryPolicy};
pub use schedule::{Schedule, TaskSpan};
pub use session::{
    CheckpointTrigger, HookAction, InFlightTask, PendingBackoff, SessionHook, SessionParts,
    SessionState, Suggestion, Told,
};
pub use sim_time::SimTimeModel;
pub use threaded::ThreadedExecutor;
pub use trace::{RunTrace, TracePoint};
pub use virtual_exec::{AsyncPolicy, RunResult, SyncBatchPolicy, VirtualExecutor};
