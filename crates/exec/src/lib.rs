//! Evaluation executors for batch Bayesian optimization.
//!
//! The paper's central claim is about **wall-clock time**: synchronous batch
//! BO wastes hardware because every worker waits for the slowest simulation
//! in the batch, while EasyBO issues a new query the moment a worker idles
//! (§III-A, Fig. 1). Reproducing Tables I/II therefore needs faithful
//! schedule accounting, which this crate provides twice over:
//!
//! * [`VirtualExecutor`] — a deterministic discrete-event engine over a
//!   virtual clock. Simulation durations come from a parameter-dependent
//!   [`SimTimeModel`] (HSPICE runtimes vary with the design point); the
//!   sync/sequential/async drivers reproduce exactly the scheduling
//!   arithmetic of the paper's testbed in microseconds of real time.
//! * [`ThreadedExecutor`] — a real multi-threaded executor (crossbeam
//!   channels + OS threads) for production use of the library, where the
//!   black box is genuinely expensive.
//!
//! Selection logic stays out of this crate: drivers call back into
//! [`SyncBatchPolicy`] / [`AsyncPolicy`] implementations (provided by the
//! `easybo` core crate) whenever they need new query points.

mod blackbox;
mod dataset;
mod schedule;
mod sim_time;
mod threaded;
mod trace;
mod virtual_exec;

pub use blackbox::{BlackBox, CostedFunction, Evaluation};
pub use dataset::{BusyPoint, Dataset};
pub use schedule::{Schedule, TaskSpan};
pub use sim_time::SimTimeModel;
pub use threaded::ThreadedExecutor;
pub use trace::{RunTrace, TracePoint};
pub use virtual_exec::{AsyncPolicy, RunResult, SyncBatchPolicy, VirtualExecutor};
