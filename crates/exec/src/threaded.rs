//! Real multi-threaded asynchronous executor.
//!
//! The [`crate::VirtualExecutor`] reproduces the paper's wall-clock
//! arithmetic in microseconds; this executor is the production path, where
//! the black box is genuinely expensive (an actual simulator invocation).
//! Worker threads pull jobs from a crossbeam channel; the coordinator runs
//! the policy and keeps at most one job in flight per worker.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crossbeam::channel;
use easybo_telemetry::{Event, Telemetry};

use crate::virtual_exec::{finish_run_metrics, AsyncPolicy};
use crate::{BlackBox, BusyPoint, Dataset, RunResult, RunTrace, Schedule};

/// Multi-threaded asynchronous executor.
///
/// `time_scale` (seconds of real sleep per second of reported evaluation
/// cost) lets tests and demos emulate heterogeneous simulator runtimes
/// without actually burning them; pass `0.0` to run at full speed.
///
/// # Example
///
/// ```
/// use easybo_exec::{CostedFunction, Dataset, BusyPoint, SimTimeModel, ThreadedExecutor};
/// use easybo_exec::AsyncPolicy;
/// use easybo_opt::Bounds;
///
/// struct Center;
/// impl AsyncPolicy for Center {
///     fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
///         vec![0.5]
///     }
/// }
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::unit_cube(1)?;
/// let time = SimTimeModel::new(&bounds, 10.0, 0.2, 1);
/// let bb = CostedFunction::new("toy", bounds, time, |x: &[f64]| x[0]);
/// let exec = ThreadedExecutor::new(4, 1e-5); // 10µs per virtual second
/// let result = exec.run_async(&bb, &[vec![0.9]], 8, &mut Center);
/// assert_eq!(result.data.len(), 8);
/// assert!(result.best_value() >= 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadedExecutor {
    workers: usize,
    time_scale: f64,
}

/// Job sent to a worker thread.
struct Job {
    task: usize,
    x: Vec<f64>,
}

/// Result returned by a worker thread.
struct Done {
    worker: usize,
    task: usize,
    x: Vec<f64>,
    value: f64,
    started_at: Duration,
    finished_at: Duration,
}

/// Message from a worker thread to the coordinator. `Started` always
/// precedes the matching `Done` on the (FIFO) channel, letting the
/// coordinator attribute each in-flight point to the worker that
/// actually picked it up rather than a slot guess.
enum WorkerMsg {
    Started {
        worker: usize,
        task: usize,
        at: Duration,
    },
    Done(Done),
}

impl ThreadedExecutor {
    /// Creates an executor with `workers` OS threads and the given
    /// real-time scale for evaluation costs.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `time_scale` is negative/non-finite.
    pub fn new(workers: usize, time_scale: f64) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(
            time_scale.is_finite() && time_scale >= 0.0,
            "time_scale must be a non-negative finite number"
        );
        ThreadedExecutor {
            workers,
            time_scale,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs asynchronous optimization on real threads. Semantics match
    /// [`crate::VirtualExecutor::run_async`], except times in the returned
    /// trace/schedule are *real elapsed seconds* and
    /// [`BusyPoint::finish_time`] is `NaN` (unknown until completion).
    pub fn run_async(
        &self,
        bb: &(dyn BlackBox + Sync),
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
    ) -> RunResult {
        self.run_async_with(bb, init, max_evals, policy, &Telemetry::disabled())
    }

    /// [`ThreadedExecutor::run_async`] with a telemetry handle: the run
    /// clock is real seconds since the run began. `QueryIssued` fires
    /// when the coordinator enqueues a job (its `worker` is a slot hint
    /// — the job has not been claimed yet), `EvalStarted`/`EvalFinished`
    /// carry the id of the thread that actually ran it, `WorkerIdle`
    /// reports each gap between a worker's consecutive jobs, and the
    /// `queue_wait_s` histogram records enqueue-to-start latency.
    pub fn run_async_with(
        &self,
        bb: &(dyn BlackBox + Sync),
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
        telemetry: &Telemetry,
    ) -> RunResult {
        let epoch = Instant::now();
        let mut data = Dataset::new();
        let mut trace = RunTrace::new();
        let mut schedule = Schedule::new(self.workers);
        let mut busy: Vec<BusyPoint> = Vec::new();
        let mut pending: std::collections::VecDeque<Vec<f64>> =
            init.iter().take(max_evals).cloned().collect();
        let mut issued = 0usize;
        let mut completed = 0usize;
        // Enqueue time per task, for the queue-wait histogram.
        let mut issued_at: HashMap<usize, f64> = HashMap::new();
        // Per-worker last-finish time, for idle-gap events.
        let mut last_done: Vec<f64> = vec![0.0; self.workers];

        let (job_tx, job_rx) = channel::unbounded::<Job>();
        let (msg_tx, msg_rx) = channel::unbounded::<WorkerMsg>();

        crossbeam::scope(|scope| {
            for w in 0..self.workers {
                let job_rx = job_rx.clone();
                let msg_tx = msg_tx.clone();
                let scale = self.time_scale;
                scope.spawn(move |_| {
                    while let Ok(job) = job_rx.recv() {
                        let started_at = epoch.elapsed();
                        if msg_tx
                            .send(WorkerMsg::Started {
                                worker: w,
                                task: job.task,
                                at: started_at,
                            })
                            .is_err()
                        {
                            break;
                        }
                        let e = bb.evaluate(&job.x);
                        if scale > 0.0 {
                            std::thread::sleep(Duration::from_secs_f64(e.cost * scale));
                        }
                        let finished_at = epoch.elapsed();
                        if msg_tx
                            .send(WorkerMsg::Done(Done {
                                worker: w,
                                task: job.task,
                                x: job.x,
                                value: e.value,
                                started_at,
                                finished_at,
                            }))
                            .is_err()
                        {
                            break;
                        }
                    }
                });
            }
            drop(msg_tx); // workers hold the remaining clones

            // Prime the pipeline: one in-flight job per worker.
            let issue = |data: &Dataset,
                         busy: &mut Vec<BusyPoint>,
                         pending: &mut std::collections::VecDeque<Vec<f64>>,
                         issued: &mut usize,
                         issued_at: &mut HashMap<usize, f64>,
                         policy: &mut dyn AsyncPolicy| {
                let now = epoch.elapsed().as_secs_f64();
                telemetry.set_now(now);
                let x = pending
                    .pop_front()
                    .unwrap_or_else(|| policy.select_next(data, busy));
                let task = *issued;
                // Slot hint only: the real worker id arrives with the
                // `Started` message and overwrites this field.
                let worker = task % self.workers;
                telemetry.emit_at_with(now, || Event::QueryIssued { task, worker });
                issued_at.insert(task, now);
                busy.push(BusyPoint {
                    x: x.clone(),
                    task,
                    worker,
                    finish_time: f64::NAN,
                });
                job_tx
                    .send(Job { task, x })
                    .expect("workers alive while issuing");
                *issued += 1;
            };
            for _ in 0..self.workers.min(max_evals) {
                issue(
                    &data,
                    &mut busy,
                    &mut pending,
                    &mut issued,
                    &mut issued_at,
                    policy,
                );
            }

            while completed < issued {
                match msg_rx.recv().expect("a worker is alive") {
                    WorkerMsg::Started { worker, task, at } => {
                        let at_s = at.as_secs_f64();
                        telemetry.set_now(at_s);
                        if let Some(bp) = busy.iter_mut().find(|bp| bp.task == task) {
                            bp.worker = worker;
                        }
                        if let Some(&t0) = issued_at.get(&task) {
                            telemetry.observe("queue_wait_s", (at_s - t0).max(0.0));
                        }
                        let gap = at_s - last_done[worker];
                        if gap > 0.0 {
                            telemetry.emit_at_with(at_s, || Event::WorkerIdle { worker, gap });
                        }
                        telemetry.emit_at_with(at_s, || Event::EvalStarted { task, worker });
                    }
                    WorkerMsg::Done(done) => {
                        // Remove exactly the completed task: in-flight points
                        // are keyed by task id, so duplicate `x` vectors on
                        // other workers stay in the busy set.
                        busy.retain(|bp| bp.task != done.task);
                        issued_at.remove(&done.task);
                        let finished = done.finished_at.as_secs_f64();
                        last_done[done.worker] = finished;
                        schedule.add(
                            done.worker,
                            done.task,
                            done.started_at.as_secs_f64(),
                            finished,
                        );
                        // Real threads can complete out of order in real
                        // time; the trace requires monotone timestamps, so
                        // clamp (and stamp the event identically).
                        let t = finished.max(trace.total_time());
                        telemetry.set_now(t);
                        telemetry.emit_at_with(t, || Event::EvalFinished {
                            task: done.task,
                            worker: done.worker,
                            value: done.value,
                        });
                        data.push(done.x, done.value);
                        trace.record(t, done.value);
                        completed += 1;
                        if issued < max_evals {
                            issue(
                                &data,
                                &mut busy,
                                &mut pending,
                                &mut issued,
                                &mut issued_at,
                                policy,
                            );
                        }
                    }
                }
            }
            drop(job_tx); // signal workers to exit
        })
        .expect("no worker thread panicked");

        finish_run_metrics(telemetry, &schedule);
        RunResult {
            data,
            trace,
            schedule,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostedFunction, SimTimeModel};
    use easybo_opt::Bounds;

    struct Walker(f64);
    impl AsyncPolicy for Walker {
        fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
            self.0 = (self.0 + 0.1) % 1.0;
            vec![self.0]
        }
    }

    fn bb() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::unit_cube(1).unwrap();
        let time = SimTimeModel::new(&bounds, 100.0, 0.4, 3);
        CostedFunction::new("toy", bounds, time, |x: &[f64]| 1.0 - (x[0] - 0.7).abs())
    }

    #[test]
    fn runs_exact_count_and_finds_values() {
        let exec = ThreadedExecutor::new(4, 0.0);
        let r = exec.run_async(&bb(), &[vec![0.7]], 13, &mut Walker(0.0));
        assert_eq!(r.data.len(), 13);
        assert_eq!(r.trace.len(), 13);
        assert!((r.best_value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn honors_max_evals_below_worker_count() {
        let exec = ThreadedExecutor::new(8, 0.0);
        let r = exec.run_async(&bb(), &[], 3, &mut Walker(0.0));
        assert_eq!(r.data.len(), 3);
    }

    #[test]
    fn sleep_scale_emulates_heterogeneous_times() {
        // With a scale of 50µs per virtual second and costs of ~60-140s,
        // the run takes a measurable but tiny amount of real time.
        let exec = ThreadedExecutor::new(2, 5e-5);
        let start = std::time::Instant::now();
        let r = exec.run_async(&bb(), &[], 6, &mut Walker(0.0));
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(r.data.len(), 6);
        assert!(elapsed > 5e-3, "sleeps should be observable: {elapsed}");
        assert!(r.schedule.makespan() > 0.0);
    }

    #[test]
    fn policy_sees_busy_points_in_threaded_mode() {
        struct Spy(Vec<usize>);
        impl AsyncPolicy for Spy {
            fn select_next(&mut self, _d: &Dataset, b: &[BusyPoint]) -> Vec<f64> {
                self.0.push(b.len());
                vec![0.4]
            }
        }
        let exec = ThreadedExecutor::new(3, 1e-5);
        let mut spy = Spy(Vec::new());
        let _ = exec.run_async(&bb(), &[vec![0.1], vec![0.2], vec![0.3]], 9, &mut spy);
        assert!(!spy.0.is_empty());
        // At selection time the other workers are (still) busy.
        assert!(spy.0.iter().all(|&n| n <= 3));
        assert!(spy.0.iter().any(|&n| n >= 1));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ThreadedExecutor::new(0, 0.0);
    }
}
