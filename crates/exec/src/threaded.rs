//! Real multi-threaded asynchronous executor.
//!
//! The [`crate::VirtualExecutor`] reproduces the paper's wall-clock
//! arithmetic in microseconds; this executor is the production path, where
//! the black box is genuinely expensive (an actual simulator invocation).
//! Worker threads pull jobs from a crossbeam channel; the coordinator runs
//! the policy and keeps at most one job in flight per worker.
//!
//! Failure handling: worker threads wrap every evaluation in
//! [`std::panic::catch_unwind`], so a panicking black box costs one
//! attempt, not the run. A panic whose payload is
//! [`crate::fault::WorkerDeath`] simulates a worker host dying: the
//! thread reports `WorkerCrashed` and exits for good. Attempts that
//! fail (or exceed [`RetryPolicy::timeout`]) are requeued with backoff;
//! when every worker is dead or stuck the run ends with a structured
//! [`OptError::ExecutorFailure`] instead of deadlocking.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel;
use easybo_opt::OptError;
use easybo_telemetry::{Event, Telemetry};

use crate::blackbox::{AttemptContext, EvalOutcome, Evaluation};
use crate::fault::WorkerDeath;
use crate::retry::RetryPolicy;
use crate::session::{HookAction, SessionHook, SessionState, Told};
use crate::virtual_exec::{finish_run_metrics, AsyncPolicy};
use crate::{BlackBox, RunResult};

/// Sleep-slice length for emulated evaluation time, so workers notice
/// the end-of-run shutdown flag instead of sleeping out a hung job.
const SLEEP_SLICE_S: f64 = 0.01;

/// Multi-threaded asynchronous executor.
///
/// `time_scale` (seconds of real sleep per second of reported evaluation
/// cost) lets tests and demos emulate heterogeneous simulator runtimes
/// without actually burning them; pass `0.0` to run at full speed.
///
/// # Example
///
/// ```
/// use easybo_exec::{CostedFunction, Dataset, BusyPoint, SimTimeModel, ThreadedExecutor};
/// use easybo_exec::AsyncPolicy;
/// use easybo_opt::Bounds;
///
/// struct Center;
/// impl AsyncPolicy for Center {
///     fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
///         vec![0.5]
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let bounds = Bounds::unit_cube(1)?;
/// let time = SimTimeModel::new(&bounds, 10.0, 0.2, 1);
/// let bb = CostedFunction::new("toy", bounds, time, |x: &[f64]| x[0]);
/// let exec = ThreadedExecutor::new(4, 1e-5); // 10µs per virtual second
/// let result = exec.run_async(&bb, &[vec![0.9]], 8, &mut Center)?;
/// assert_eq!(result.data.len(), 8);
/// assert!(result.best_value() >= 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadedExecutor {
    workers: usize,
    time_scale: f64,
}

/// Job sent to a worker thread.
struct Job {
    task: usize,
    attempt: usize,
    x: Vec<f64>,
}

/// Result returned by a worker thread.
struct Done {
    worker: usize,
    task: usize,
    attempt: usize,
    eval: Evaluation,
    started_at: Duration,
    finished_at: Duration,
}

/// Message from a worker thread to the coordinator. `Started` always
/// precedes the matching `Done` on the (FIFO) channel, letting the
/// coordinator attribute each in-flight point to the worker that
/// actually picked it up rather than a slot guess.
enum WorkerMsg {
    Started {
        worker: usize,
        task: usize,
        attempt: usize,
        at: Duration,
    },
    Done(Done),
    /// The worker died mid-evaluation (a [`WorkerDeath`] panic) and has
    /// left the pool.
    Crashed {
        worker: usize,
        task: usize,
        attempt: usize,
        at: Duration,
    },
}

impl ThreadedExecutor {
    /// Creates an executor with `workers` OS threads and the given
    /// real-time scale for evaluation costs.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `time_scale` is negative/non-finite.
    pub fn new(workers: usize, time_scale: f64) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(
            time_scale.is_finite() && time_scale >= 0.0,
            "time_scale must be a non-negative finite number"
        );
        ThreadedExecutor {
            workers,
            time_scale,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs asynchronous optimization on real threads. Semantics match
    /// [`crate::VirtualExecutor::run_async`], except times in the returned
    /// trace/schedule are *real elapsed seconds* and
    /// [`BusyPoint::finish_time`] is `NaN` (unknown until completion).
    ///
    /// # Errors
    ///
    /// Returns [`OptError::ExecutorFailure`] when the worker pool can no
    /// longer finish the run (every thread dead or stuck).
    pub fn run_async(
        &self,
        bb: &(dyn BlackBox + Sync),
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
    ) -> Result<RunResult, OptError> {
        self.run_async_with(bb, init, max_evals, policy, &Telemetry::disabled())
    }

    /// [`ThreadedExecutor::run_async`] with a telemetry handle: the run
    /// clock is real seconds since the run began. `QueryIssued` fires
    /// when the coordinator enqueues a job (its `worker` is a slot hint
    /// — the job has not been claimed yet), `EvalStarted`/`EvalFinished`
    /// carry the id of the thread that actually ran it, `WorkerIdle`
    /// reports each gap between a worker's consecutive jobs, and the
    /// `queue_wait_s` histogram records enqueue-to-start latency.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::ExecutorFailure`] when the worker pool can no
    /// longer finish the run (every thread dead or stuck).
    pub fn run_async_with(
        &self,
        bb: &(dyn BlackBox + Sync),
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
        telemetry: &Telemetry,
    ) -> Result<RunResult, OptError> {
        self.run_async_resilient(bb, init, max_evals, policy, &RetryPolicy::none(), telemetry)
    }

    /// [`ThreadedExecutor::run_async_with`] under a [`RetryPolicy`]:
    /// failed attempts (panics, failed/non-finite outcomes, timeouts,
    /// worker deaths) are requeued onto the pool after a real-seconds
    /// backoff, up to `retry.max_attempts`, then dropped/recorded/
    /// penalized per [`FailureAction`]. A timed-out attempt is
    /// abandoned: its busy point is removed immediately (so the policy
    /// stops penalizing around a dead point, §III-C), its span is
    /// flagged failed, and its worker is considered stuck until it
    /// reports back. `max_evals` counts tasks, not attempts.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::ExecutorFailure`] when every worker is dead
    /// or stuck, or the message channel is severed, instead of
    /// deadlocking on a reply that can never come.
    pub fn run_async_resilient(
        &self,
        bb: &(dyn BlackBox + Sync),
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
        retry: &RetryPolicy,
        telemetry: &Telemetry,
    ) -> Result<RunResult, OptError> {
        let session = SessionState::new(self.workers, max_evals, init);
        self.drive(bb, session, policy, retry, telemetry, None, false)
    }

    /// [`ThreadedExecutor::run_async_resilient`] over an explicit
    /// [`SessionState`], with an optional [`SessionHook`] invoked after
    /// every completed observation (the seam checkpoint writers and
    /// chaos plans plug into).
    ///
    /// # Errors
    ///
    /// Returns [`OptError::ExecutorFailure`] when the pool dies, the
    /// channel is severed, or the hook aborts via [`HookAction::Stop`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_session_resilient(
        &self,
        bb: &(dyn BlackBox + Sync),
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
        retry: &RetryPolicy,
        telemetry: &Telemetry,
        hook: Option<&mut SessionHook<'_>>,
    ) -> Result<RunResult, OptError> {
        let session = SessionState::new(self.workers, max_evals, init);
        self.drive(bb, session, policy, retry, telemetry, hook, false)
    }

    /// Continues a previously captured session: interrupted in-flight
    /// attempts are re-enqueued onto the fresh pool, and pending retry
    /// backoffs are rebased onto this run's epoch (the remaining delay
    /// is preserved, measured from the capture clock). Real-time
    /// timestamps restart at zero, but the trace's monotone clamp keeps
    /// best-so-far times nondecreasing across the splice.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::ExecutorFailure`] when the session was
    /// captured under a different worker count, the pool dies, or the
    /// hook aborts via [`HookAction::Stop`].
    pub fn resume_session_resilient(
        &self,
        bb: &(dyn BlackBox + Sync),
        mut session: SessionState,
        policy: &mut dyn AsyncPolicy,
        retry: &RetryPolicy,
        telemetry: &Telemetry,
        hook: Option<&mut SessionHook<'_>>,
    ) -> Result<RunResult, OptError> {
        let clock = session.clock();
        for b in &mut session.backoffs {
            b.due = (b.due - clock).max(0.0);
        }
        self.drive(bb, session, policy, retry, telemetry, hook, true)
    }

    /// The coordinator loop shared by fresh and resumed runs.
    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn drive(
        &self,
        bb: &(dyn BlackBox + Sync),
        session: SessionState,
        policy: &mut dyn AsyncPolicy,
        retry: &RetryPolicy,
        telemetry: &Telemetry,
        mut hook: Option<&mut SessionHook<'_>>,
        resume: bool,
    ) -> Result<RunResult, OptError> {
        if session.workers() != self.workers {
            return Err(OptError::ExecutorFailure {
                reason: format!(
                    "session captured with {} workers cannot run on {}",
                    session.workers(),
                    self.workers
                ),
            });
        }
        let epoch = Instant::now();
        let mut session = session;
        // Enqueue time per task, for the queue-wait histogram.
        let mut issued_at: HashMap<usize, f64> = HashMap::new();
        // Per-worker last-finish time, for idle-gap events.
        let mut last_done: Vec<f64> = vec![0.0; self.workers];
        let mut dead = vec![false; self.workers];
        let mut stuck = vec![false; self.workers];
        let shutdown = AtomicBool::new(false);

        let (job_tx, job_rx) = channel::unbounded::<Job>();
        let (msg_tx, msg_rx) = channel::unbounded::<WorkerMsg>();

        let run: Result<(), OptError> = crossbeam::scope(|scope| {
            for w in 0..self.workers {
                let job_rx = job_rx.clone();
                let msg_tx = msg_tx.clone();
                let scale = self.time_scale;
                let shutdown = &shutdown;
                scope.spawn(move |_| {
                    'jobs: while let Ok(job) = job_rx.recv() {
                        let started_at = epoch.elapsed();
                        if msg_tx
                            .send(WorkerMsg::Started {
                                worker: w,
                                task: job.task,
                                attempt: job.attempt,
                                at: started_at,
                            })
                            .is_err()
                        {
                            break;
                        }
                        let ctx = AttemptContext {
                            task: job.task,
                            attempt: job.attempt,
                            worker: w,
                            panics_caught: true,
                        };
                        let eval = match catch_unwind(AssertUnwindSafe(|| {
                            bb.evaluate_attempt(&job.x, ctx)
                        })) {
                            Ok(e) => e,
                            Err(payload) => {
                                if payload.is::<WorkerDeath>() {
                                    let _ = msg_tx.send(WorkerMsg::Crashed {
                                        worker: w,
                                        task: job.task,
                                        attempt: job.attempt,
                                        at: epoch.elapsed(),
                                    });
                                    break; // this worker is gone for good
                                }
                                Evaluation::failed("panicked during evaluation", 0.0)
                            }
                        };
                        if scale > 0.0 {
                            // Sleep in slices so a "hung" job (huge cost)
                            // cannot outlive the run once shutdown is set.
                            let mut remaining = eval.cost * scale;
                            while remaining > 0.0 {
                                if shutdown.load(Ordering::Relaxed) {
                                    break 'jobs;
                                }
                                let chunk = remaining.min(SLEEP_SLICE_S);
                                std::thread::sleep(Duration::from_secs_f64(chunk));
                                remaining -= chunk;
                            }
                        }
                        if msg_tx
                            .send(WorkerMsg::Done(Done {
                                worker: w,
                                task: job.task,
                                attempt: job.attempt,
                                eval,
                                started_at,
                                finished_at: epoch.elapsed(),
                            }))
                            .is_err()
                        {
                            break;
                        }
                    }
                });
            }
            drop(msg_tx); // workers hold the remaining clones
            drop(job_rx); // so sends fail once every worker has exited

            let out = (|| -> Result<(), OptError> {
                // Enqueues one attempt of a task onto the worker pool.
                let enqueue = |task: usize,
                               attempt: usize,
                               x: Vec<f64>,
                               session: &mut SessionState,
                               issued_at: &mut HashMap<usize, f64>| {
                    let now = epoch.elapsed().as_secs_f64();
                    telemetry.set_now(now);
                    let _span = telemetry.span("dispatch");
                    // Slot hint only: the real worker id arrives with the
                    // `Started` message and overwrites this field.
                    let worker = task % self.workers;
                    telemetry.emit_at_with(now, || Event::QueryIssued { task, worker });
                    issued_at.insert(task, now);
                    // `finish_time` is unknown until completion.
                    session.begin(task, attempt, x.clone(), worker, None, f64::NAN);
                    // A failed send means every worker exited; the
                    // capacity check below turns that into an error.
                    let _ = job_tx.send(Job { task, attempt, x });
                };
                // Proposes and enqueues a brand-new task (no-op once the
                // budget is exhausted).
                let issue_new = |session: &mut SessionState,
                                 issued_at: &mut HashMap<usize, f64>,
                                 policy: &mut dyn AsyncPolicy| {
                    telemetry.set_now(epoch.elapsed().as_secs_f64());
                    if let Some(s) = session.ask_traced(policy, telemetry) {
                        enqueue(s.task, s.attempt, s.x, session, issued_at);
                    }
                };

                if resume {
                    // Re-enqueue every interrupted attempt, then top the
                    // pipeline back up to one job per worker.
                    let inflight = std::mem::take(&mut session.inflight);
                    for inf in inflight {
                        enqueue(inf.task, inf.attempt, inf.x, &mut session, &mut issued_at);
                    }
                    let spare = self.workers.saturating_sub(session.inflight().len());
                    for _ in 0..spare {
                        issue_new(&mut session, &mut issued_at, policy);
                    }
                } else {
                    // Prime the pipeline: one in-flight job per worker.
                    for _ in 0..self.workers.min(session.max_evals()) {
                        issue_new(&mut session, &mut issued_at, policy);
                    }
                }

                let mut last_completed = session.completed();
                while session.resolved() < session.issued() {
                    // Fire retries whose backoff has elapsed.
                    let now = epoch.elapsed().as_secs_f64();
                    session.clock = now;
                    for r in session.take_due_backoffs(now) {
                        enqueue(r.task, r.attempt, r.x, &mut session, &mut issued_at);
                    }

                    let live = (0..self.workers).filter(|&w| !dead[w] && !stuck[w]).count();
                    if live == 0 {
                        return Err(OptError::ExecutorFailure {
                            reason: format!(
                                "no live workers remain ({} of {} dead, {} stuck, {} tasks unresolved)",
                                dead.iter().filter(|&&d| d).count(),
                                self.workers,
                                stuck.iter().filter(|&&s| s).count(),
                                session.issued() - session.resolved()
                            ),
                        });
                    }

                    // Sleep until the next deadline/backoff expiry, or
                    // indefinitely when neither is pending.
                    let mut wake: Option<f64> = session
                        .backoffs()
                        .iter()
                        .map(|r| r.due)
                        .fold(None, |a, d| Some(a.map_or(d, |v: f64| v.min(d))));
                    if let Some(tmo) = retry.timeout {
                        for inf in session.inflight() {
                            if let Some((_, start)) = inf.started {
                                let d = start + tmo;
                                wake = Some(wake.map_or(d, |v: f64| v.min(d)));
                            }
                        }
                    }
                    let severed = || OptError::ExecutorFailure {
                        reason: "worker message channel severed".to_string(),
                    };
                    let msg = match wake {
                        None => Some(msg_rx.recv().map_err(|_| severed())?),
                        Some(at) => {
                            let now = epoch.elapsed().as_secs_f64();
                            let dur = Duration::from_secs_f64((at - now).max(0.0));
                            match msg_rx.recv_timeout(dur) {
                                Ok(m) => Some(m),
                                Err(channel::RecvTimeoutError::Timeout) => None,
                                Err(channel::RecvTimeoutError::Disconnected) => {
                                    return Err(severed())
                                }
                            }
                        }
                    };

                    match msg {
                        None => {}
                        Some(WorkerMsg::Started {
                            worker,
                            task,
                            attempt,
                            at,
                        }) => {
                            // Any sign of life un-sticks a worker.
                            stuck[worker] = false;
                            let at_s = at.as_secs_f64();
                            let current = session
                                .inflight()
                                .iter()
                                .any(|inf| inf.task == task && inf.attempt == attempt);
                            if current {
                                telemetry.set_now(at_s);
                                if let Some(inf) =
                                    session.inflight.iter_mut().find(|inf| inf.task == task)
                                {
                                    inf.started = Some((worker, at_s));
                                }
                                if let Some(bp) =
                                    session.busy.iter_mut().find(|bp| bp.task == task)
                                {
                                    bp.worker = worker;
                                }
                                if let Some(&t0) = issued_at.get(&task) {
                                    telemetry.observe("queue_wait_s", (at_s - t0).max(0.0));
                                }
                                let gap = at_s - last_done[worker];
                                if gap > 0.0 {
                                    telemetry
                                        .emit_at_with(at_s, || Event::WorkerIdle { worker, gap });
                                }
                                telemetry.emit_at_with(at_s, || Event::EvalStarted { task, worker });
                            }
                        }
                        Some(WorkerMsg::Done(done)) => {
                            stuck[done.worker] = false;
                            let finished = done.finished_at.as_secs_f64();
                            last_done[done.worker] = finished;
                            let current = session
                                .inflight()
                                .iter()
                                .any(|inf| inf.task == done.task && inf.attempt == done.attempt);
                            if !current {
                                // A superseded attempt (timed out and already
                                // resolved): the worker is free again, nothing
                                // else to record.
                                continue;
                            }
                            // `take_inflight` removes exactly the completed
                            // task's busy point: in-flight points are keyed
                            // by task id, so duplicate `x` vectors on other
                            // workers stay in the busy set.
                            let inf = session.take_inflight(done.task).expect("checked above");
                            issued_at.remove(&done.task);
                            let outcome = done.eval.resolved_outcome();
                            session.schedule.add_with(
                                done.worker,
                                done.task,
                                done.started_at.as_secs_f64(),
                                finished,
                                !outcome.is_ok(),
                            );
                            telemetry.set_now(finished);
                            match session.tell(
                                retry,
                                telemetry,
                                finished,
                                done.worker,
                                done.task,
                                inf.x,
                                done.eval.value,
                                done.attempt,
                                outcome,
                            ) {
                                Told::Backoff { .. } => {}
                                Told::Committed | Told::Dropped => {
                                    issue_new(&mut session, &mut issued_at, policy);
                                }
                            }
                        }
                        Some(WorkerMsg::Crashed {
                            worker,
                            task,
                            attempt,
                            at,
                        }) => {
                            dead[worker] = true;
                            stuck[worker] = false;
                            let at_s = at.as_secs_f64();
                            telemetry.set_now(at_s);
                            telemetry.emit_at_with(at_s, || Event::WorkerCrashed { worker, task });
                            telemetry.incr("worker_crashes", 1);
                            let current = session
                                .inflight()
                                .iter()
                                .any(|inf| inf.task == task && inf.attempt == attempt);
                            if current {
                                let inf = session.take_inflight(task).expect("checked above");
                                issued_at.remove(&task);
                                if let Some((w, start)) = inf.started {
                                    session.schedule.add_with(w, task, start, at_s.max(start), true);
                                }
                                let outcome = EvalOutcome::Failed {
                                    reason: "worker crashed".to_string(),
                                };
                                // Nothing came back from the dead worker, so
                                // a `Record` exhaustion commits an honest NaN.
                                match session.tell(
                                    retry,
                                    telemetry,
                                    at_s,
                                    worker,
                                    task,
                                    inf.x,
                                    f64::NAN,
                                    attempt,
                                    outcome,
                                ) {
                                    Told::Backoff { .. } => {}
                                    Told::Committed | Told::Dropped => {
                                        issue_new(&mut session, &mut issued_at, policy);
                                    }
                                }
                            }
                        }
                    }

                    // Abandon attempts that blew their deadline.
                    if let Some(tmo) = retry.timeout {
                        let now = epoch.elapsed().as_secs_f64();
                        let mut expired: Vec<usize> = session
                            .inflight()
                            .iter()
                            .filter(|inf| {
                                inf.started.is_some_and(|(_, start)| now >= start + tmo)
                            })
                            .map(|inf| inf.task)
                            .collect();
                        expired.sort_unstable();
                        for task in expired {
                            let inf = session.take_inflight(task).expect("collected above");
                            let (worker, start) = inf.started.expect("filtered on started");
                            issued_at.remove(&task);
                            // The abandoned worker is occupied (and useless)
                            // until it reports back.
                            stuck[worker] = true;
                            session.schedule.add_with(worker, task, start, start + tmo, true);
                            let deadline = start + tmo;
                            telemetry.set_now(deadline);
                            match session.tell(
                                retry,
                                telemetry,
                                deadline,
                                worker,
                                task,
                                inf.x,
                                f64::NAN,
                                inf.attempt,
                                EvalOutcome::TimedOut,
                            ) {
                                Told::Backoff { .. } => {}
                                Told::Committed | Told::Dropped => {
                                    issue_new(&mut session, &mut issued_at, policy);
                                }
                            }
                        }
                    }

                    if session.completed() > last_completed {
                        last_completed = session.completed();
                        session.clock = epoch.elapsed().as_secs_f64();
                        if let Some(h) = hook.as_mut() {
                            if let HookAction::Stop { reason } =
                                (**h)(&session, &*policy, session.clock)
                            {
                                return Err(OptError::ExecutorFailure { reason });
                            }
                        }
                    }
                }
                Ok(())
            })();
            shutdown.store(true, Ordering::Relaxed);
            drop(job_tx); // signal workers to exit
            out
        })
        .expect("executor scope panicked");
        run?;

        finish_run_metrics(telemetry, session.schedule());
        Ok(session.into_result())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::{BusyPoint, CostedFunction, Dataset, FaultyBlackBox, SimTimeModel};
    use easybo_opt::Bounds;

    struct Walker(f64);
    impl AsyncPolicy for Walker {
        fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
            self.0 = (self.0 + 0.1) % 1.0;
            vec![self.0]
        }
    }

    fn bb() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::unit_cube(1).unwrap();
        let time = SimTimeModel::new(&bounds, 100.0, 0.4, 3);
        CostedFunction::new("toy", bounds, time, |x: &[f64]| 1.0 - (x[0] - 0.7).abs())
    }

    #[test]
    fn runs_exact_count_and_finds_values() {
        let exec = ThreadedExecutor::new(4, 0.0);
        let r = exec
            .run_async(&bb(), &[vec![0.7]], 13, &mut Walker(0.0))
            .expect("run succeeds");
        assert_eq!(r.data.len(), 13);
        assert_eq!(r.trace.len(), 13);
        assert!((r.best_value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn honors_max_evals_below_worker_count() {
        let exec = ThreadedExecutor::new(8, 0.0);
        let r = exec
            .run_async(&bb(), &[], 3, &mut Walker(0.0))
            .expect("run succeeds");
        assert_eq!(r.data.len(), 3);
    }

    #[test]
    fn sleep_scale_emulates_heterogeneous_times() {
        // With a scale of 50µs per virtual second and costs of ~60-140s,
        // the run takes a measurable but tiny amount of real time.
        let exec = ThreadedExecutor::new(2, 5e-5);
        let start = std::time::Instant::now();
        let r = exec
            .run_async(&bb(), &[], 6, &mut Walker(0.0))
            .expect("run succeeds");
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(r.data.len(), 6);
        assert!(elapsed > 5e-3, "sleeps should be observable: {elapsed}");
        assert!(r.schedule.makespan() > 0.0);
    }

    #[test]
    fn policy_sees_busy_points_in_threaded_mode() {
        struct Spy(Vec<usize>);
        impl AsyncPolicy for Spy {
            fn select_next(&mut self, _d: &Dataset, b: &[BusyPoint]) -> Vec<f64> {
                self.0.push(b.len());
                vec![0.4]
            }
        }
        let exec = ThreadedExecutor::new(3, 1e-5);
        let mut spy = Spy(Vec::new());
        let _ = exec
            .run_async(&bb(), &[vec![0.1], vec![0.2], vec![0.3]], 9, &mut spy)
            .expect("run succeeds");
        assert!(!spy.0.is_empty());
        // At selection time the other workers are (still) busy.
        assert!(spy.0.iter().all(|&n| n <= 3));
        assert!(spy.0.iter().any(|&n| n >= 1));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ThreadedExecutor::new(0, 0.0);
    }

    #[test]
    fn panicking_blackbox_costs_one_attempt_not_the_run() {
        struct PanicFirst(Bounds);
        impl BlackBox for PanicFirst {
            fn bounds(&self) -> &Bounds {
                &self.0
            }
            fn evaluate(&self, x: &[f64]) -> Evaluation {
                Evaluation::ok(x[0], 1.0)
            }
            fn evaluate_attempt(&self, x: &[f64], ctx: AttemptContext) -> Evaluation {
                if ctx.attempt == 1 {
                    panic!("flaky simulator");
                }
                self.evaluate(x)
            }
        }
        let bb = PanicFirst(Bounds::unit_cube(1).unwrap());
        let retry = RetryPolicy::default().max_attempts(2).backoff(0.0, 1.0);
        let r = ThreadedExecutor::new(2, 0.0)
            .run_async_resilient(
                &bb,
                &[],
                4,
                &mut Walker(0.0),
                &retry,
                &Telemetry::disabled(),
            )
            .expect("panics are contained");
        assert_eq!(r.data.len(), 4);
        assert!(r.data.ys().iter().all(|y| y.is_finite()));
    }

    #[test]
    fn sole_worker_death_returns_structured_error() {
        // Satellite regression: a killed worker must surface as an
        // `OptError`, not a deadlock or an executor panic.
        let plan = FaultPlan {
            crash_after: vec![Some(1)],
            ..FaultPlan::default()
        };
        let faulty = FaultyBlackBox::new(bb(), plan);
        let err = ThreadedExecutor::new(1, 0.0)
            .run_async(&faulty, &[vec![0.5]], 6, &mut Walker(0.0))
            .expect_err("run cannot finish without workers");
        assert!(
            matches!(err, OptError::ExecutorFailure { .. }),
            "unexpected error: {err:?}"
        );
        assert!(err.to_string().contains("no live workers"));
    }

    #[test]
    fn worker_death_fails_over_to_survivors() {
        let plan = FaultPlan {
            crash_after: vec![Some(2), None, None],
            ..FaultPlan::default()
        };
        let faulty = FaultyBlackBox::new(bb(), plan);
        let retry = RetryPolicy::default().max_attempts(3).backoff(0.0, 1.0);
        let r = ThreadedExecutor::new(3, 0.0)
            .run_async_resilient(
                &faulty,
                &[vec![0.1], vec![0.2], vec![0.3]],
                10,
                &mut Walker(0.0),
                &retry,
                &Telemetry::disabled(),
            )
            .expect("survivors finish the run");
        assert_eq!(r.data.len(), 10);
        assert!(r.data.ys().iter().all(|y| y.is_finite()));
    }
}
