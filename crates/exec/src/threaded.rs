//! Real multi-threaded asynchronous executor.
//!
//! The [`crate::VirtualExecutor`] reproduces the paper's wall-clock
//! arithmetic in microseconds; this executor is the production path, where
//! the black box is genuinely expensive (an actual simulator invocation).
//! Worker threads pull jobs from a crossbeam channel; the coordinator runs
//! the policy and keeps at most one job in flight per worker.
//!
//! Failure handling: worker threads wrap every evaluation in
//! [`std::panic::catch_unwind`], so a panicking black box costs one
//! attempt, not the run. A panic whose payload is
//! [`crate::fault::WorkerDeath`] simulates a worker host dying: the
//! thread reports `WorkerCrashed` and exits for good. Attempts that
//! fail (or exceed [`RetryPolicy::timeout`]) are requeued with backoff;
//! when every worker is dead or stuck the run ends with a structured
//! [`OptError::ExecutorFailure`] instead of deadlocking.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel;
use easybo_opt::OptError;
use easybo_telemetry::{Event, Telemetry};

use crate::blackbox::{AttemptContext, EvalOutcome, Evaluation};
use crate::fault::WorkerDeath;
use crate::retry::{FailureAction, RetryPolicy};
use crate::virtual_exec::{finish_run_metrics, AsyncPolicy};
use crate::{BlackBox, BusyPoint, Dataset, RunResult, RunTrace, Schedule};

/// Sleep-slice length for emulated evaluation time, so workers notice
/// the end-of-run shutdown flag instead of sleeping out a hung job.
const SLEEP_SLICE_S: f64 = 0.01;

/// Multi-threaded asynchronous executor.
///
/// `time_scale` (seconds of real sleep per second of reported evaluation
/// cost) lets tests and demos emulate heterogeneous simulator runtimes
/// without actually burning them; pass `0.0` to run at full speed.
///
/// # Example
///
/// ```
/// use easybo_exec::{CostedFunction, Dataset, BusyPoint, SimTimeModel, ThreadedExecutor};
/// use easybo_exec::AsyncPolicy;
/// use easybo_opt::Bounds;
///
/// struct Center;
/// impl AsyncPolicy for Center {
///     fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
///         vec![0.5]
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let bounds = Bounds::unit_cube(1)?;
/// let time = SimTimeModel::new(&bounds, 10.0, 0.2, 1);
/// let bb = CostedFunction::new("toy", bounds, time, |x: &[f64]| x[0]);
/// let exec = ThreadedExecutor::new(4, 1e-5); // 10µs per virtual second
/// let result = exec.run_async(&bb, &[vec![0.9]], 8, &mut Center)?;
/// assert_eq!(result.data.len(), 8);
/// assert!(result.best_value() >= 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadedExecutor {
    workers: usize,
    time_scale: f64,
}

/// Job sent to a worker thread.
struct Job {
    task: usize,
    attempt: usize,
    x: Vec<f64>,
}

/// Result returned by a worker thread.
struct Done {
    worker: usize,
    task: usize,
    attempt: usize,
    eval: Evaluation,
    started_at: Duration,
    finished_at: Duration,
}

/// Message from a worker thread to the coordinator. `Started` always
/// precedes the matching `Done` on the (FIFO) channel, letting the
/// coordinator attribute each in-flight point to the worker that
/// actually picked it up rather than a slot guess.
enum WorkerMsg {
    Started {
        worker: usize,
        task: usize,
        attempt: usize,
        at: Duration,
    },
    Done(Done),
    /// The worker died mid-evaluation (a [`WorkerDeath`] panic) and has
    /// left the pool.
    Crashed {
        worker: usize,
        task: usize,
        attempt: usize,
        at: Duration,
    },
}

/// One task currently owned by the worker pool.
struct InFlight {
    x: Vec<f64>,
    attempt: usize,
    /// `(worker, start_s)` once a worker claimed the job.
    started: Option<(usize, f64)>,
}

/// A failed task waiting out its backoff before the next attempt.
struct PendingRetry {
    due: f64,
    task: usize,
    attempt: usize,
    x: Vec<f64>,
}

/// Decides retry vs. terminal for a failed attempt: emits `EvalFailed`
/// (+ counters), queues the retry when attempts remain, and otherwise
/// returns the point together with the value to commit (if any) per the
/// exhaustion action. `FailureAction::Record` is handled by the caller
/// before reaching here.
#[allow(clippy::too_many_arguments)]
fn resolve_failed_attempt(
    retry: &RetryPolicy,
    telemetry: &Telemetry,
    now: f64,
    task: usize,
    worker: usize,
    attempt: usize,
    x: Vec<f64>,
    outcome: &EvalOutcome,
    retries: &mut Vec<PendingRetry>,
) -> Option<(Vec<f64>, Option<f64>)> {
    let reason = outcome.describe();
    telemetry.emit_at_with(now, || Event::EvalFailed {
        task,
        worker,
        attempt,
        reason: reason.clone(),
    });
    telemetry.incr("eval_failures", 1);
    if *outcome == EvalOutcome::TimedOut {
        telemetry.incr("eval_timeouts", 1);
    }
    if attempt < retry.max_attempts {
        let delay = retry.delay(attempt);
        let next_attempt = attempt + 1;
        telemetry.emit_at_with(now, || Event::EvalRetried {
            task,
            attempt: next_attempt,
            delay,
        });
        telemetry.incr("eval_retries", 1);
        retries.push(PendingRetry {
            due: now + delay,
            task,
            attempt: next_attempt,
            x,
        });
        return None;
    }
    match retry.on_exhausted {
        FailureAction::Record => unreachable!("Record resolves as a completion"),
        FailureAction::Drop => Some((x, None)),
        FailureAction::Penalty(p) => Some((x, Some(p))),
    }
}

impl ThreadedExecutor {
    /// Creates an executor with `workers` OS threads and the given
    /// real-time scale for evaluation costs.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `time_scale` is negative/non-finite.
    pub fn new(workers: usize, time_scale: f64) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(
            time_scale.is_finite() && time_scale >= 0.0,
            "time_scale must be a non-negative finite number"
        );
        ThreadedExecutor {
            workers,
            time_scale,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs asynchronous optimization on real threads. Semantics match
    /// [`crate::VirtualExecutor::run_async`], except times in the returned
    /// trace/schedule are *real elapsed seconds* and
    /// [`BusyPoint::finish_time`] is `NaN` (unknown until completion).
    ///
    /// # Errors
    ///
    /// Returns [`OptError::ExecutorFailure`] when the worker pool can no
    /// longer finish the run (every thread dead or stuck).
    pub fn run_async(
        &self,
        bb: &(dyn BlackBox + Sync),
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
    ) -> Result<RunResult, OptError> {
        self.run_async_with(bb, init, max_evals, policy, &Telemetry::disabled())
    }

    /// [`ThreadedExecutor::run_async`] with a telemetry handle: the run
    /// clock is real seconds since the run began. `QueryIssued` fires
    /// when the coordinator enqueues a job (its `worker` is a slot hint
    /// — the job has not been claimed yet), `EvalStarted`/`EvalFinished`
    /// carry the id of the thread that actually ran it, `WorkerIdle`
    /// reports each gap between a worker's consecutive jobs, and the
    /// `queue_wait_s` histogram records enqueue-to-start latency.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::ExecutorFailure`] when the worker pool can no
    /// longer finish the run (every thread dead or stuck).
    pub fn run_async_with(
        &self,
        bb: &(dyn BlackBox + Sync),
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
        telemetry: &Telemetry,
    ) -> Result<RunResult, OptError> {
        self.run_async_resilient(bb, init, max_evals, policy, &RetryPolicy::none(), telemetry)
    }

    /// [`ThreadedExecutor::run_async_with`] under a [`RetryPolicy`]:
    /// failed attempts (panics, failed/non-finite outcomes, timeouts,
    /// worker deaths) are requeued onto the pool after a real-seconds
    /// backoff, up to `retry.max_attempts`, then dropped/recorded/
    /// penalized per [`FailureAction`]. A timed-out attempt is
    /// abandoned: its busy point is removed immediately (so the policy
    /// stops penalizing around a dead point, §III-C), its span is
    /// flagged failed, and its worker is considered stuck until it
    /// reports back. `max_evals` counts tasks, not attempts.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::ExecutorFailure`] when every worker is dead
    /// or stuck, or the message channel is severed, instead of
    /// deadlocking on a reply that can never come.
    pub fn run_async_resilient(
        &self,
        bb: &(dyn BlackBox + Sync),
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
        retry: &RetryPolicy,
        telemetry: &Telemetry,
    ) -> Result<RunResult, OptError> {
        let epoch = Instant::now();
        let mut data = Dataset::new();
        let mut trace = RunTrace::new();
        let mut schedule = Schedule::new(self.workers);
        let mut busy: Vec<BusyPoint> = Vec::new();
        let mut pending: std::collections::VecDeque<Vec<f64>> =
            init.iter().take(max_evals).cloned().collect();
        let mut issued = 0usize;
        let mut resolved = 0usize;
        // Enqueue time per task, for the queue-wait histogram.
        let mut issued_at: HashMap<usize, f64> = HashMap::new();
        // Per-worker last-finish time, for idle-gap events.
        let mut last_done: Vec<f64> = vec![0.0; self.workers];
        let mut inflight: HashMap<usize, InFlight> = HashMap::new();
        let mut retries: Vec<PendingRetry> = Vec::new();
        let mut dead = vec![false; self.workers];
        let mut stuck = vec![false; self.workers];
        let shutdown = AtomicBool::new(false);

        let (job_tx, job_rx) = channel::unbounded::<Job>();
        let (msg_tx, msg_rx) = channel::unbounded::<WorkerMsg>();

        let run: Result<(), OptError> = crossbeam::scope(|scope| {
            for w in 0..self.workers {
                let job_rx = job_rx.clone();
                let msg_tx = msg_tx.clone();
                let scale = self.time_scale;
                let shutdown = &shutdown;
                scope.spawn(move |_| {
                    'jobs: while let Ok(job) = job_rx.recv() {
                        let started_at = epoch.elapsed();
                        if msg_tx
                            .send(WorkerMsg::Started {
                                worker: w,
                                task: job.task,
                                attempt: job.attempt,
                                at: started_at,
                            })
                            .is_err()
                        {
                            break;
                        }
                        let ctx = AttemptContext {
                            task: job.task,
                            attempt: job.attempt,
                            worker: w,
                            panics_caught: true,
                        };
                        let eval = match catch_unwind(AssertUnwindSafe(|| {
                            bb.evaluate_attempt(&job.x, ctx)
                        })) {
                            Ok(e) => e,
                            Err(payload) => {
                                if payload.is::<WorkerDeath>() {
                                    let _ = msg_tx.send(WorkerMsg::Crashed {
                                        worker: w,
                                        task: job.task,
                                        attempt: job.attempt,
                                        at: epoch.elapsed(),
                                    });
                                    break; // this worker is gone for good
                                }
                                Evaluation::failed("panicked during evaluation", 0.0)
                            }
                        };
                        if scale > 0.0 {
                            // Sleep in slices so a "hung" job (huge cost)
                            // cannot outlive the run once shutdown is set.
                            let mut remaining = eval.cost * scale;
                            while remaining > 0.0 {
                                if shutdown.load(Ordering::Relaxed) {
                                    break 'jobs;
                                }
                                let chunk = remaining.min(SLEEP_SLICE_S);
                                std::thread::sleep(Duration::from_secs_f64(chunk));
                                remaining -= chunk;
                            }
                        }
                        if msg_tx
                            .send(WorkerMsg::Done(Done {
                                worker: w,
                                task: job.task,
                                attempt: job.attempt,
                                eval,
                                started_at,
                                finished_at: epoch.elapsed(),
                            }))
                            .is_err()
                        {
                            break;
                        }
                    }
                });
            }
            drop(msg_tx); // workers hold the remaining clones
            drop(job_rx); // so sends fail once every worker has exited

            let out = (|| -> Result<(), OptError> {
                // Enqueues one attempt of a task onto the worker pool.
                let enqueue = |task: usize,
                               attempt: usize,
                               x: Vec<f64>,
                               busy: &mut Vec<BusyPoint>,
                               inflight: &mut HashMap<usize, InFlight>,
                               issued_at: &mut HashMap<usize, f64>| {
                    let now = epoch.elapsed().as_secs_f64();
                    telemetry.set_now(now);
                    // Slot hint only: the real worker id arrives with the
                    // `Started` message and overwrites this field.
                    let worker = task % self.workers;
                    telemetry.emit_at_with(now, || Event::QueryIssued { task, worker });
                    issued_at.insert(task, now);
                    busy.push(BusyPoint {
                        x: x.clone(),
                        task,
                        worker,
                        finish_time: f64::NAN,
                    });
                    inflight.insert(
                        task,
                        InFlight {
                            x: x.clone(),
                            attempt,
                            started: None,
                        },
                    );
                    // A failed send means every worker exited; the
                    // capacity check below turns that into an error.
                    let _ = job_tx.send(Job { task, attempt, x });
                };
                // Proposes and enqueues a brand-new task.
                let issue_new = |busy: &mut Vec<BusyPoint>,
                                 inflight: &mut HashMap<usize, InFlight>,
                                 issued_at: &mut HashMap<usize, f64>,
                                 pending: &mut std::collections::VecDeque<Vec<f64>>,
                                 issued: &mut usize,
                                 data: &Dataset,
                                 policy: &mut dyn AsyncPolicy| {
                    telemetry.set_now(epoch.elapsed().as_secs_f64());
                    let x = match pending.pop_front() {
                        Some(x) => x,
                        None => policy.select_next(data, busy),
                    };
                    let task = *issued;
                    *issued += 1;
                    enqueue(task, 1, x, busy, inflight, issued_at);
                };

                // Prime the pipeline: one in-flight job per worker.
                for _ in 0..self.workers.min(max_evals) {
                    issue_new(
                        &mut busy,
                        &mut inflight,
                        &mut issued_at,
                        &mut pending,
                        &mut issued,
                        &data,
                        policy,
                    );
                }

                while resolved < issued {
                    // Fire retries whose backoff has elapsed.
                    let now = epoch.elapsed().as_secs_f64();
                    let mut due: Vec<PendingRetry> = Vec::new();
                    retries.retain_mut(|r| {
                        if r.due <= now {
                            due.push(PendingRetry {
                                due: r.due,
                                task: r.task,
                                attempt: r.attempt,
                                x: std::mem::take(&mut r.x),
                            });
                            false
                        } else {
                            true
                        }
                    });
                    due.sort_unstable_by_key(|r| r.task);
                    for r in due {
                        enqueue(
                            r.task,
                            r.attempt,
                            r.x,
                            &mut busy,
                            &mut inflight,
                            &mut issued_at,
                        );
                    }

                    let live = (0..self.workers).filter(|&w| !dead[w] && !stuck[w]).count();
                    if live == 0 {
                        return Err(OptError::ExecutorFailure {
                            reason: format!(
                                "no live workers remain ({} of {} dead, {} stuck, {} tasks unresolved)",
                                dead.iter().filter(|&&d| d).count(),
                                self.workers,
                                stuck.iter().filter(|&&s| s).count(),
                                issued - resolved
                            ),
                        });
                    }

                    // Sleep until the next deadline/backoff expiry, or
                    // indefinitely when neither is pending.
                    let mut wake: Option<f64> = retries
                        .iter()
                        .map(|r| r.due)
                        .fold(None, |a, d| Some(a.map_or(d, |v: f64| v.min(d))));
                    if let Some(tmo) = retry.timeout {
                        for inf in inflight.values() {
                            if let Some((_, start)) = inf.started {
                                let d = start + tmo;
                                wake = Some(wake.map_or(d, |v: f64| v.min(d)));
                            }
                        }
                    }
                    let severed = || OptError::ExecutorFailure {
                        reason: "worker message channel severed".to_string(),
                    };
                    let msg = match wake {
                        None => Some(msg_rx.recv().map_err(|_| severed())?),
                        Some(at) => {
                            let now = epoch.elapsed().as_secs_f64();
                            let dur = Duration::from_secs_f64((at - now).max(0.0));
                            match msg_rx.recv_timeout(dur) {
                                Ok(m) => Some(m),
                                Err(channel::RecvTimeoutError::Timeout) => None,
                                Err(channel::RecvTimeoutError::Disconnected) => {
                                    return Err(severed())
                                }
                            }
                        }
                    };

                    match msg {
                        None => {}
                        Some(WorkerMsg::Started {
                            worker,
                            task,
                            attempt,
                            at,
                        }) => {
                            // Any sign of life un-sticks a worker.
                            stuck[worker] = false;
                            let at_s = at.as_secs_f64();
                            let current = inflight
                                .get(&task)
                                .is_some_and(|inf| inf.attempt == attempt);
                            if current {
                                telemetry.set_now(at_s);
                                if let Some(inf) = inflight.get_mut(&task) {
                                    inf.started = Some((worker, at_s));
                                }
                                if let Some(bp) = busy.iter_mut().find(|bp| bp.task == task) {
                                    bp.worker = worker;
                                }
                                if let Some(&t0) = issued_at.get(&task) {
                                    telemetry.observe("queue_wait_s", (at_s - t0).max(0.0));
                                }
                                let gap = at_s - last_done[worker];
                                if gap > 0.0 {
                                    telemetry
                                        .emit_at_with(at_s, || Event::WorkerIdle { worker, gap });
                                }
                                telemetry.emit_at_with(at_s, || Event::EvalStarted { task, worker });
                            }
                        }
                        Some(WorkerMsg::Done(done)) => {
                            stuck[done.worker] = false;
                            let finished = done.finished_at.as_secs_f64();
                            last_done[done.worker] = finished;
                            let current = inflight
                                .get(&done.task)
                                .is_some_and(|inf| inf.attempt == done.attempt);
                            if !current {
                                // A superseded attempt (timed out and already
                                // resolved): the worker is free again, nothing
                                // else to record.
                                continue;
                            }
                            let inf = inflight.remove(&done.task).expect("checked above");
                            // Remove exactly the completed task: in-flight
                            // points are keyed by task id, so duplicate `x`
                            // vectors on other workers stay in the busy set.
                            busy.retain(|bp| bp.task != done.task);
                            issued_at.remove(&done.task);
                            let outcome = done.eval.resolved_outcome();
                            schedule.add_with(
                                done.worker,
                                done.task,
                                done.started_at.as_secs_f64(),
                                finished,
                                !outcome.is_ok(),
                            );
                            let terminal = done.attempt >= retry.max_attempts;
                            let record_anyway = terminal
                                && retry.on_exhausted == FailureAction::Record;
                            if outcome.is_ok() || record_anyway {
                                // Real threads can complete out of order in
                                // real time; the trace requires monotone
                                // timestamps, so clamp (and stamp the event
                                // identically).
                                let t = finished.max(trace.total_time());
                                telemetry.set_now(t);
                                telemetry.emit_at_with(t, || Event::EvalFinished {
                                    task: done.task,
                                    worker: done.worker,
                                    value: done.eval.value,
                                });
                                data.push(inf.x, done.eval.value);
                                trace.record(t, done.eval.value);
                                resolved += 1;
                                if issued < max_evals {
                                    issue_new(
                                        &mut busy,
                                        &mut inflight,
                                        &mut issued_at,
                                        &mut pending,
                                        &mut issued,
                                        &data,
                                        policy,
                                    );
                                }
                            } else {
                                telemetry.set_now(finished);
                                if let Some((x, commit)) = resolve_failed_attempt(
                                    retry,
                                    telemetry,
                                    finished,
                                    done.task,
                                    done.worker,
                                    done.attempt,
                                    inf.x,
                                    &outcome,
                                    &mut retries,
                                ) {
                                    if let Some(p) = commit {
                                        let t = finished.max(trace.total_time());
                                        telemetry.set_now(t);
                                        telemetry.emit_at_with(t, || Event::EvalFinished {
                                            task: done.task,
                                            worker: done.worker,
                                            value: p,
                                        });
                                        data.push(x, p);
                                        trace.record(t, p);
                                    }
                                    resolved += 1;
                                    if issued < max_evals {
                                        issue_new(
                                            &mut busy,
                                            &mut inflight,
                                            &mut issued_at,
                                            &mut pending,
                                            &mut issued,
                                            &data,
                                            policy,
                                        );
                                    }
                                }
                            }
                        }
                        Some(WorkerMsg::Crashed {
                            worker,
                            task,
                            attempt,
                            at,
                        }) => {
                            dead[worker] = true;
                            stuck[worker] = false;
                            let at_s = at.as_secs_f64();
                            telemetry.set_now(at_s);
                            telemetry.emit_at_with(at_s, || Event::WorkerCrashed { worker, task });
                            telemetry.incr("worker_crashes", 1);
                            let current = inflight
                                .get(&task)
                                .is_some_and(|inf| inf.attempt == attempt);
                            if current {
                                let inf = inflight.remove(&task).expect("checked above");
                                busy.retain(|bp| bp.task != task);
                                issued_at.remove(&task);
                                if let Some((w, start)) = inf.started {
                                    schedule.add_with(w, task, start, at_s.max(start), true);
                                }
                                let outcome = EvalOutcome::Failed {
                                    reason: "worker crashed".to_string(),
                                };
                                let terminal = attempt >= retry.max_attempts;
                                let record_anyway =
                                    terminal && retry.on_exhausted == FailureAction::Record;
                                if record_anyway {
                                    // Nothing came back; record the honest NaN.
                                    let t = at_s.max(trace.total_time());
                                    telemetry.set_now(t);
                                    telemetry.emit_at_with(t, || Event::EvalFinished {
                                        task,
                                        worker,
                                        value: f64::NAN,
                                    });
                                    data.push(inf.x, f64::NAN);
                                    trace.record(t, f64::NAN);
                                    resolved += 1;
                                } else if let Some((x, commit)) = resolve_failed_attempt(
                                    retry,
                                    telemetry,
                                    at_s,
                                    task,
                                    worker,
                                    attempt,
                                    inf.x,
                                    &outcome,
                                    &mut retries,
                                ) {
                                    if let Some(p) = commit {
                                        let t = at_s.max(trace.total_time());
                                        telemetry.set_now(t);
                                        telemetry.emit_at_with(t, || Event::EvalFinished {
                                            task,
                                            worker,
                                            value: p,
                                        });
                                        data.push(x, p);
                                        trace.record(t, p);
                                    }
                                    resolved += 1;
                                }
                                if terminal && issued < max_evals {
                                    issue_new(
                                        &mut busy,
                                        &mut inflight,
                                        &mut issued_at,
                                        &mut pending,
                                        &mut issued,
                                        &data,
                                        policy,
                                    );
                                }
                            }
                        }
                    }

                    // Abandon attempts that blew their deadline.
                    if let Some(tmo) = retry.timeout {
                        let now = epoch.elapsed().as_secs_f64();
                        let mut expired: Vec<usize> = inflight
                            .iter()
                            .filter(|(_, inf)| {
                                inf.started.is_some_and(|(_, start)| now >= start + tmo)
                            })
                            .map(|(&t, _)| t)
                            .collect();
                        expired.sort_unstable();
                        for task in expired {
                            let inf = inflight.remove(&task).expect("collected above");
                            let (worker, start) = inf.started.expect("filtered on started");
                            busy.retain(|bp| bp.task != task);
                            issued_at.remove(&task);
                            // The abandoned worker is occupied (and useless)
                            // until it reports back.
                            stuck[worker] = true;
                            schedule.add_with(worker, task, start, start + tmo, true);
                            let deadline = start + tmo;
                            telemetry.set_now(deadline);
                            let terminal = inf.attempt >= retry.max_attempts;
                            let record_anyway =
                                terminal && retry.on_exhausted == FailureAction::Record;
                            if record_anyway {
                                let t = deadline.max(trace.total_time());
                                telemetry.set_now(t);
                                telemetry.emit_at_with(t, || Event::EvalFinished {
                                    task,
                                    worker,
                                    value: f64::NAN,
                                });
                                data.push(inf.x, f64::NAN);
                                trace.record(t, f64::NAN);
                                resolved += 1;
                            } else if let Some((x, commit)) = resolve_failed_attempt(
                                retry,
                                telemetry,
                                deadline,
                                task,
                                worker,
                                inf.attempt,
                                inf.x,
                                &EvalOutcome::TimedOut,
                                &mut retries,
                            ) {
                                if let Some(p) = commit {
                                    let t = deadline.max(trace.total_time());
                                    telemetry.set_now(t);
                                    telemetry.emit_at_with(t, || Event::EvalFinished {
                                        task,
                                        worker,
                                        value: p,
                                    });
                                    data.push(x, p);
                                    trace.record(t, p);
                                }
                                resolved += 1;
                            } else {
                                continue;
                            }
                            if issued < max_evals {
                                issue_new(
                                    &mut busy,
                                    &mut inflight,
                                    &mut issued_at,
                                    &mut pending,
                                    &mut issued,
                                    &data,
                                    policy,
                                );
                            }
                        }
                    }
                }
                Ok(())
            })();
            shutdown.store(true, Ordering::Relaxed);
            drop(job_tx); // signal workers to exit
            out
        })
        .expect("executor scope panicked");
        run?;

        finish_run_metrics(telemetry, &schedule);
        Ok(RunResult {
            data,
            trace,
            schedule,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::{CostedFunction, FaultyBlackBox, SimTimeModel};
    use easybo_opt::Bounds;

    struct Walker(f64);
    impl AsyncPolicy for Walker {
        fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
            self.0 = (self.0 + 0.1) % 1.0;
            vec![self.0]
        }
    }

    fn bb() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::unit_cube(1).unwrap();
        let time = SimTimeModel::new(&bounds, 100.0, 0.4, 3);
        CostedFunction::new("toy", bounds, time, |x: &[f64]| 1.0 - (x[0] - 0.7).abs())
    }

    #[test]
    fn runs_exact_count_and_finds_values() {
        let exec = ThreadedExecutor::new(4, 0.0);
        let r = exec
            .run_async(&bb(), &[vec![0.7]], 13, &mut Walker(0.0))
            .expect("run succeeds");
        assert_eq!(r.data.len(), 13);
        assert_eq!(r.trace.len(), 13);
        assert!((r.best_value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn honors_max_evals_below_worker_count() {
        let exec = ThreadedExecutor::new(8, 0.0);
        let r = exec
            .run_async(&bb(), &[], 3, &mut Walker(0.0))
            .expect("run succeeds");
        assert_eq!(r.data.len(), 3);
    }

    #[test]
    fn sleep_scale_emulates_heterogeneous_times() {
        // With a scale of 50µs per virtual second and costs of ~60-140s,
        // the run takes a measurable but tiny amount of real time.
        let exec = ThreadedExecutor::new(2, 5e-5);
        let start = std::time::Instant::now();
        let r = exec
            .run_async(&bb(), &[], 6, &mut Walker(0.0))
            .expect("run succeeds");
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(r.data.len(), 6);
        assert!(elapsed > 5e-3, "sleeps should be observable: {elapsed}");
        assert!(r.schedule.makespan() > 0.0);
    }

    #[test]
    fn policy_sees_busy_points_in_threaded_mode() {
        struct Spy(Vec<usize>);
        impl AsyncPolicy for Spy {
            fn select_next(&mut self, _d: &Dataset, b: &[BusyPoint]) -> Vec<f64> {
                self.0.push(b.len());
                vec![0.4]
            }
        }
        let exec = ThreadedExecutor::new(3, 1e-5);
        let mut spy = Spy(Vec::new());
        let _ = exec
            .run_async(&bb(), &[vec![0.1], vec![0.2], vec![0.3]], 9, &mut spy)
            .expect("run succeeds");
        assert!(!spy.0.is_empty());
        // At selection time the other workers are (still) busy.
        assert!(spy.0.iter().all(|&n| n <= 3));
        assert!(spy.0.iter().any(|&n| n >= 1));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ThreadedExecutor::new(0, 0.0);
    }

    #[test]
    fn panicking_blackbox_costs_one_attempt_not_the_run() {
        struct PanicFirst(Bounds);
        impl BlackBox for PanicFirst {
            fn bounds(&self) -> &Bounds {
                &self.0
            }
            fn evaluate(&self, x: &[f64]) -> Evaluation {
                Evaluation::ok(x[0], 1.0)
            }
            fn evaluate_attempt(&self, x: &[f64], ctx: AttemptContext) -> Evaluation {
                if ctx.attempt == 1 {
                    panic!("flaky simulator");
                }
                self.evaluate(x)
            }
        }
        let bb = PanicFirst(Bounds::unit_cube(1).unwrap());
        let retry = RetryPolicy::default().max_attempts(2).backoff(0.0, 1.0);
        let r = ThreadedExecutor::new(2, 0.0)
            .run_async_resilient(
                &bb,
                &[],
                4,
                &mut Walker(0.0),
                &retry,
                &Telemetry::disabled(),
            )
            .expect("panics are contained");
        assert_eq!(r.data.len(), 4);
        assert!(r.data.ys().iter().all(|y| y.is_finite()));
    }

    #[test]
    fn sole_worker_death_returns_structured_error() {
        // Satellite regression: a killed worker must surface as an
        // `OptError`, not a deadlock or an executor panic.
        let plan = FaultPlan {
            crash_after: vec![Some(1)],
            ..FaultPlan::default()
        };
        let faulty = FaultyBlackBox::new(bb(), plan);
        let err = ThreadedExecutor::new(1, 0.0)
            .run_async(&faulty, &[vec![0.5]], 6, &mut Walker(0.0))
            .expect_err("run cannot finish without workers");
        assert!(
            matches!(err, OptError::ExecutorFailure { .. }),
            "unexpected error: {err:?}"
        );
        assert!(err.to_string().contains("no live workers"));
    }

    #[test]
    fn worker_death_fails_over_to_survivors() {
        let plan = FaultPlan {
            crash_after: vec![Some(2), None, None],
            ..FaultPlan::default()
        };
        let faulty = FaultyBlackBox::new(bb(), plan);
        let retry = RetryPolicy::default().max_attempts(3).backoff(0.0, 1.0);
        let r = ThreadedExecutor::new(3, 0.0)
            .run_async_resilient(
                &faulty,
                &[vec![0.1], vec![0.2], vec![0.3]],
                10,
                &mut Walker(0.0),
                &retry,
                &Telemetry::disabled(),
            )
            .expect("survivors finish the run");
        assert_eq!(r.data.len(), 10);
        assert!(r.data.ys().iter().all(|y| y.is_finite()));
    }
}
