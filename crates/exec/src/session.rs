//! Explicit ask/tell session core shared by both executors.
//!
//! [`SessionState`] owns every piece of run bookkeeping that survives a
//! coordinator death: the observed [`Dataset`], the best-so-far
//! [`RunTrace`], the committed [`Schedule`] spans, the queue of pending
//! initial-design points, the busy/pseudo set, the in-flight attempt
//! table, and the retry backoff queue. Executors drive it through
//! [`SessionState::ask`] (propose the next task) and
//! [`SessionState::tell`] (resolve a finished attempt); the event
//! mechanics — the virtual executor's event heap, the threaded
//! executor's channels — stay executor-local. This is the seam a
//! future network ask/tell service plugs into, and the unit of durable
//! persistence: [`SessionState::to_parts`] /
//! [`SessionState::from_parts`] convert to/from the plain-data
//! [`SessionParts`] that `easybo-persist` serializes.

use std::collections::VecDeque;

use easybo_telemetry::{Event, Telemetry};

use crate::blackbox::EvalOutcome;
use crate::retry::{FailureAction, RetryPolicy};
use crate::virtual_exec::{AsyncPolicy, RunResult};
use crate::{BusyPoint, Dataset, RunTrace, Schedule, TaskSpan};

/// A task proposed by [`SessionState::ask`]: evaluate `x` as attempt
/// `attempt` of task `task`.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// Monotone task id.
    pub task: usize,
    /// 1-based attempt number (always 1 for a fresh task).
    pub attempt: usize,
    /// The query point.
    pub x: Vec<f64>,
}

/// One attempt currently being evaluated by some worker.
#[derive(Debug, Clone, PartialEq)]
pub struct InFlightTask {
    /// Task id.
    pub task: usize,
    /// 1-based attempt number.
    pub attempt: usize,
    /// The query point.
    pub x: Vec<f64>,
    /// `(worker, start_time)` once a worker picked the attempt up. The
    /// virtual executor starts attempts eagerly so this is always
    /// `Some`; the threaded executor enqueues first and fills it in
    /// when the `Started` message arrives.
    pub started: Option<(usize, f64)>,
}

/// A failed attempt waiting out its retry backoff.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingBackoff {
    /// Run-clock time at which the next attempt may start.
    pub due: f64,
    /// Worker the retry is bound to (the virtual executor retries on
    /// the same worker; the threaded executor treats this as a hint).
    pub worker: usize,
    /// Task id.
    pub task: usize,
    /// 1-based attempt number of the *next* attempt.
    pub attempt: usize,
    /// The query point.
    pub x: Vec<f64>,
}

/// Resolution of [`SessionState::tell`].
#[derive(Debug, Clone, PartialEq)]
pub enum Told {
    /// An observation was committed (success, exhausted-`Record`, or
    /// exhausted-`Penalty`); the worker is free for a new task.
    Committed,
    /// The attempt failed and was queued for retry at `due`; the task
    /// stays alive and the worker backs off with it.
    Backoff {
        /// Run-clock time of the next attempt.
        due: f64,
    },
    /// The task exhausted its attempts and was dropped without an
    /// observation; the worker is free for a new task.
    Dropped,
}

/// Verdict returned by a session hook after each completed
/// observation.
#[derive(Debug, Clone, PartialEq)]
pub enum HookAction {
    /// Keep running.
    Continue,
    /// Abort the run (e.g. a chaos plan killing the coordinator); the
    /// executor returns an `ExecutorFailure` carrying `reason`.
    Stop {
        /// Human-readable abort reason.
        reason: String,
    },
}

/// Callback invoked by executors after every completed observation,
/// with the session, the (read-only) policy, and the run clock.
/// Checkpoint writers live behind this seam so the executors never
/// depend on the persistence layer.
pub type SessionHook<'h> = dyn FnMut(&SessionState, &dyn AsyncPolicy, f64) -> HookAction + 'h;

/// Decides when a checkpoint is due: every `every_evals` completed
/// observations and/or every `every_seconds` of run clock, whichever
/// fires first. Pure bookkeeping — the caller supplies both clocks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CheckpointTrigger {
    every_evals: Option<usize>,
    every_seconds: Option<f64>,
    last_completed: usize,
    last_time: f64,
}

impl CheckpointTrigger {
    /// A trigger firing on eval-count and/or run-clock cadence. Both
    /// `None` never fires.
    pub fn new(every_evals: Option<usize>, every_seconds: Option<f64>) -> Self {
        CheckpointTrigger {
            every_evals,
            every_seconds,
            last_completed: 0,
            last_time: 0.0,
        }
    }

    /// Re-arms the cadence at `(completed, now)` without firing — used
    /// after a resume so the first post-resume checkpoint waits a full
    /// interval.
    pub fn rearm(&mut self, completed: usize, now: f64) {
        self.last_completed = completed;
        self.last_time = now;
    }

    /// Returns `true` (and re-arms) when a checkpoint is due at
    /// `(completed, now)`.
    pub fn fire(&mut self, completed: usize, now: f64) -> bool {
        let evals_due = self
            .every_evals
            .is_some_and(|k| completed >= self.last_completed + k);
        let clock_due = self
            .every_seconds
            .is_some_and(|s| now >= self.last_time + s);
        if evals_due || clock_due {
            self.rearm(completed, now);
            return true;
        }
        false
    }
}

/// Plain-data image of a [`SessionState`] for serialization: only
/// `std` types and `Copy`-field structs, so the persistence layer can
/// encode it without knowing executor internals. Spans of *active*
/// in-flight attempts are stripped (resume re-issues those attempts,
/// which re-creates their spans and busy points).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionParts {
    /// Worker-pool size the run was scheduled for.
    pub workers: usize,
    /// Total task budget.
    pub max_evals: usize,
    /// Tasks issued so far (attempts of one task share an id).
    pub issued: usize,
    /// Tasks terminally resolved (committed or dropped).
    pub resolved: usize,
    /// Run clock at capture.
    pub clock: f64,
    /// Initial-design points not yet issued.
    pub pending: Vec<Vec<f64>>,
    /// Completed observations in completion order.
    pub observations: Vec<(Vec<f64>, f64)>,
    /// Best-so-far timeline as `(time, value)` pairs; replaying them
    /// through `RunTrace::record` rebuilds the trace bit-identically.
    pub trace: Vec<(f64, f64)>,
    /// Committed schedule spans (in-flight spans stripped).
    pub spans: Vec<TaskSpan>,
    /// Attempts that were being evaluated at capture.
    pub inflight: Vec<InFlightTask>,
    /// Failed attempts waiting out their backoff at capture.
    pub backoffs: Vec<PendingBackoff>,
}

/// The mutable state of one asynchronous optimization session. See the
/// module docs for the role split between this type and the executors.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionState {
    pub(crate) data: Dataset,
    pub(crate) trace: RunTrace,
    pub(crate) schedule: Schedule,
    pub(crate) pending: VecDeque<Vec<f64>>,
    pub(crate) busy: Vec<BusyPoint>,
    pub(crate) inflight: Vec<InFlightTask>,
    pub(crate) backoffs: Vec<PendingBackoff>,
    pub(crate) issued: usize,
    pub(crate) resolved: usize,
    pub(crate) max_evals: usize,
    pub(crate) workers: usize,
    pub(crate) clock: f64,
}

impl SessionState {
    /// A fresh session over `workers` workers, a budget of `max_evals`
    /// tasks, and the given initial design (truncated to the budget).
    pub fn new(workers: usize, max_evals: usize, init: &[Vec<f64>]) -> Self {
        SessionState {
            data: Dataset::new(),
            trace: RunTrace::new(),
            schedule: Schedule::new(workers),
            pending: init.iter().take(max_evals).cloned().collect(),
            busy: Vec::new(),
            inflight: Vec::new(),
            backoffs: Vec::new(),
            issued: 0,
            resolved: 0,
            max_evals,
            workers,
            clock: 0.0,
        }
    }

    /// Proposes the next task: the next pending initial-design point,
    /// or a fresh policy proposal against the current data and busy
    /// set. Returns `None` once the task budget is exhausted.
    pub fn ask(&mut self, policy: &mut dyn AsyncPolicy) -> Option<Suggestion> {
        self.ask_traced(policy, &Telemetry::disabled())
    }

    /// [`SessionState::ask`] wrapped in a `session_step` span, so the
    /// proposal phase (and the GP/acquisition spans the policy opens
    /// beneath it) lands on the run timeline. Both executors call this
    /// from their coordinator thread only, which keeps span ids
    /// deterministic.
    pub fn ask_traced(
        &mut self,
        policy: &mut dyn AsyncPolicy,
        telemetry: &Telemetry,
    ) -> Option<Suggestion> {
        if self.issued >= self.max_evals {
            return None;
        }
        let _span = telemetry.span("session_step");
        let x = match self.pending.pop_front() {
            Some(x) => x,
            None => policy.select_next(&self.data, &self.busy),
        };
        let task = self.issued;
        self.issued += 1;
        Some(Suggestion {
            task,
            attempt: 1,
            x,
        })
    }

    /// Registers an attempt as in flight: adds its busy/pseudo point
    /// and its in-flight record. `started` is `Some((worker,
    /// start_time))` when the attempt begins executing immediately;
    /// `finish_time` may be `NaN` when unknown (threaded executor).
    pub fn begin(
        &mut self,
        task: usize,
        attempt: usize,
        x: Vec<f64>,
        worker: usize,
        started: Option<f64>,
        finish_time: f64,
    ) {
        self.busy.push(BusyPoint {
            x: x.clone(),
            task,
            worker,
            finish_time,
        });
        self.inflight.push(InFlightTask {
            task,
            attempt,
            x,
            started: started.map(|t| (worker, t)),
        });
    }

    /// Records a committed worker-occupancy span. The virtual executor
    /// adds spans at dispatch time (the cost is known eagerly); remote
    /// drivers such as the network session manager only learn the cost
    /// when the result arrives, so they add the span here — in dispatch
    /// order, which keeps the schedule bit-identical to the in-process
    /// run.
    pub fn add_span(&mut self, worker: usize, task: usize, start: f64, end: f64, failed: bool) {
        self.schedule.add_with(worker, task, start, end, failed);
    }

    /// Sets the run clock (the time of the last processed event).
    /// Drivers call this exactly where the in-process executor assigns
    /// `session.clock`, so captures taken by either agree.
    pub fn set_clock(&mut self, t: f64) {
        self.clock = t;
    }

    /// Removes and returns every in-flight record in issue order,
    /// clearing their busy points — the first step of a resume or
    /// rehydration, which re-issues each attempt at its recorded
    /// worker/start.
    pub fn drain_inflight(&mut self) -> Vec<InFlightTask> {
        let drained = std::mem::take(&mut self.inflight);
        self.busy
            .retain(|bp| !drained.iter().any(|i| i.task == bp.task));
        drained
    }

    /// Removes and returns the in-flight record for `task`, dropping
    /// its busy point.
    pub fn take_inflight(&mut self, task: usize) -> Option<InFlightTask> {
        self.busy.retain(|bp| bp.task != task);
        let idx = self.inflight.iter().position(|i| i.task == task)?;
        Some(self.inflight.remove(idx))
    }

    /// Removes and returns the backoff record for `task`.
    pub fn take_backoff(&mut self, task: usize) -> Option<PendingBackoff> {
        let idx = self.backoffs.iter().position(|b| b.task == task)?;
        Some(self.backoffs.remove(idx))
    }

    /// Removes and returns every backoff due at or before `now`,
    /// ordered by task id for determinism.
    pub fn take_due_backoffs(&mut self, now: f64) -> Vec<PendingBackoff> {
        let mut due: Vec<PendingBackoff> = Vec::new();
        let mut i = 0;
        while i < self.backoffs.len() {
            if self.backoffs[i].due <= now {
                due.push(self.backoffs.remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_unstable_by_key(|r| r.task);
        due
    }

    /// Resolves one finished attempt of `task` (whose in-flight record
    /// the caller already removed via [`SessionState::take_inflight`]):
    /// commits the observation, queues a retry with backoff, or applies
    /// the exhaustion action — emitting the same telemetry events and
    /// counters in the same order as the pre-session executors.
    #[allow(clippy::too_many_arguments)]
    pub fn tell(
        &mut self,
        retry: &RetryPolicy,
        telemetry: &Telemetry,
        time: f64,
        worker: usize,
        task: usize,
        x: Vec<f64>,
        value: f64,
        attempt: usize,
        outcome: EvalOutcome,
    ) -> Told {
        let terminal = attempt >= retry.max_attempts;
        // `Record` keeps the legacy contract: an exhausted task is
        // committed with whatever value it produced, even non-finite.
        if outcome.is_ok() || (terminal && retry.on_exhausted == FailureAction::Record) {
            self.commit(telemetry, time, worker, task, value, x);
            return Told::Committed;
        }
        let reason = outcome.describe();
        telemetry.emit_at_with(time, || Event::EvalFailed {
            task,
            worker,
            attempt,
            reason: reason.clone(),
        });
        telemetry.incr("eval_failures", 1);
        if outcome == EvalOutcome::TimedOut {
            telemetry.incr("eval_timeouts", 1);
        }
        if !terminal {
            let delay = retry.delay(attempt);
            let next_attempt = attempt + 1;
            telemetry.emit_at_with(time, || Event::EvalRetried {
                task,
                attempt: next_attempt,
                delay,
            });
            telemetry.incr("eval_retries", 1);
            let due = time + delay;
            self.backoffs.push(PendingBackoff {
                due,
                worker,
                task,
                attempt: next_attempt,
                x,
            });
            return Told::Backoff { due };
        }
        match retry.on_exhausted {
            // Record was handled with the success path above.
            FailureAction::Record => unreachable!("Record exhaustion commits eagerly"),
            FailureAction::Drop => {
                self.resolved += 1;
                Told::Dropped
            }
            FailureAction::Penalty(p) => {
                // The synthetic observation is a real completion as far
                // as the trace and its JSONL reconstruction go.
                self.commit(telemetry, time, worker, task, p, x);
                Told::Committed
            }
        }
    }

    /// Commits an observation: `EvalFinished`, dataset, trace. The
    /// commit time is clamped to keep the trace monotone (a no-op on
    /// the virtual clock, load-bearing for the threaded executor's
    /// real clock after a resume).
    pub fn commit(
        &mut self,
        telemetry: &Telemetry,
        time: f64,
        worker: usize,
        task: usize,
        value: f64,
        x: Vec<f64>,
    ) {
        let t = time.max(self.trace.total_time());
        telemetry.emit_at_with(t, || Event::EvalFinished {
            task,
            worker,
            value,
        });
        self.data.push(x, value);
        self.trace.record(t, value);
        self.resolved += 1;
    }

    /// Observed data so far.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Best-so-far timeline so far.
    pub fn trace(&self) -> &RunTrace {
        &self.trace
    }

    /// Worker occupancy so far.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Current busy/pseudo points.
    pub fn busy(&self) -> &[BusyPoint] {
        &self.busy
    }

    /// Current in-flight attempts.
    pub fn inflight(&self) -> &[InFlightTask] {
        &self.inflight
    }

    /// Failed attempts waiting out their backoff.
    pub fn backoffs(&self) -> &[PendingBackoff] {
        &self.backoffs
    }

    /// Completed observations (`data().len()`).
    pub fn completed(&self) -> usize {
        self.data.len()
    }

    /// Tasks issued so far.
    pub fn issued(&self) -> usize {
        self.issued
    }

    /// Tasks terminally resolved so far.
    pub fn resolved(&self) -> usize {
        self.resolved
    }

    /// Total task budget.
    pub fn max_evals(&self) -> usize {
        self.max_evals
    }

    /// Worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run clock at the last processed event.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Consumes the session into a [`RunResult`].
    pub fn into_result(self) -> RunResult {
        RunResult {
            data: self.data,
            trace: self.trace,
            schedule: self.schedule,
        }
    }

    /// Captures the session as plain serializable data. Spans of
    /// active in-flight attempts are stripped (resume re-issues those
    /// attempts, re-creating their spans and busy points), so the
    /// capture together with the black box fully determines the
    /// continuation.
    pub fn to_parts(&self) -> SessionParts {
        let spans = self
            .schedule
            .spans()
            .iter()
            .filter(|s| {
                !self
                    .inflight
                    .iter()
                    .any(|i| i.task == s.task && i.started == Some((s.worker, s.start)))
            })
            .copied()
            .collect();
        SessionParts {
            workers: self.workers,
            max_evals: self.max_evals,
            issued: self.issued,
            resolved: self.resolved,
            clock: self.clock,
            pending: self.pending.iter().cloned().collect(),
            observations: self
                .data
                .xs()
                .iter()
                .cloned()
                .zip(self.data.ys().iter().copied())
                .collect(),
            trace: self
                .trace
                .points()
                .iter()
                .map(|p| (p.time, p.value))
                .collect(),
            spans,
            inflight: self.inflight.clone(),
            backoffs: self.backoffs.clone(),
        }
    }

    /// Rebuilds a session from captured parts. The dataset, trace
    /// (best-so-far recomputation replays bit-identically), and
    /// committed schedule are restored; the busy set starts empty
    /// because the resuming executor re-issues every in-flight attempt,
    /// which re-creates busy points and spans.
    ///
    /// # Panics
    ///
    /// Panics if the parts are internally inconsistent (non-monotone
    /// trace times, span workers out of range) — captures produced by
    /// [`SessionState::to_parts`] never are.
    pub fn from_parts(parts: SessionParts) -> Self {
        let mut data = Dataset::new();
        for (x, y) in parts.observations {
            data.push(x, y);
        }
        let mut trace = RunTrace::new();
        for (time, value) in parts.trace {
            trace.record(time, value);
        }
        let mut schedule = Schedule::new(parts.workers);
        for s in parts.spans {
            schedule.add_with(s.worker, s.task, s.start, s.end, s.failed);
        }
        SessionState {
            data,
            trace,
            schedule,
            pending: parts.pending.into(),
            busy: Vec::new(),
            inflight: parts.inflight,
            backoffs: parts.backoffs,
            issued: parts.issued,
            resolved: parts.resolved,
            max_evals: parts.max_evals,
            workers: parts.workers,
            clock: parts.clock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Center;
    impl AsyncPolicy for Center {
        fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
            vec![0.5]
        }
    }

    #[test]
    fn ask_drains_pending_then_polls_policy() {
        let init = vec![vec![0.1], vec![0.2]];
        let mut s = SessionState::new(2, 4, &init);
        let a = s.ask(&mut Center).unwrap();
        assert_eq!((a.task, a.attempt, a.x), (0, 1, vec![0.1]));
        let b = s.ask(&mut Center).unwrap();
        assert_eq!(b.x, vec![0.2]);
        let c = s.ask(&mut Center).unwrap();
        assert_eq!(c.x, vec![0.5], "policy takes over after init");
        assert!(s.ask(&mut Center).is_some());
        assert!(s.ask(&mut Center).is_none(), "budget of 4 exhausted");
        assert_eq!(s.issued(), 4);
    }

    #[test]
    fn init_is_truncated_to_budget() {
        let init: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64]).collect();
        let s = SessionState::new(1, 3, &init);
        assert_eq!(s.pending.len(), 3);
    }

    #[test]
    fn begin_and_take_inflight_track_busy_points() {
        let mut s = SessionState::new(2, 4, &[]);
        s.begin(0, 1, vec![0.3], 1, Some(2.0), 7.0);
        assert_eq!(s.busy().len(), 1);
        assert_eq!(s.inflight().len(), 1);
        assert_eq!(s.inflight()[0].started, Some((1, 2.0)));
        let inf = s.take_inflight(0).unwrap();
        assert_eq!(inf.x, vec![0.3]);
        assert!(s.busy().is_empty());
        assert!(s.take_inflight(0).is_none());
    }

    #[test]
    fn tell_commits_ok_outcomes() {
        let mut s = SessionState::new(1, 2, &[]);
        let retry = RetryPolicy::none();
        let t = Telemetry::disabled();
        let told = s.tell(&retry, &t, 5.0, 0, 0, vec![0.4], 1.5, 1, EvalOutcome::Ok);
        assert_eq!(told, Told::Committed);
        assert_eq!(s.completed(), 1);
        assert_eq!(s.resolved(), 1);
        assert_eq!(s.trace().points()[0].time, 5.0);
    }

    #[test]
    fn tell_queues_backoff_then_drops_on_exhaustion() {
        let mut s = SessionState::new(1, 2, &[]);
        let retry = RetryPolicy::default().max_attempts(2).backoff(3.0, 2.0);
        let t = Telemetry::disabled();
        let told = s.tell(
            &retry,
            &t,
            10.0,
            0,
            0,
            vec![0.4],
            f64::NAN,
            1,
            EvalOutcome::Failed {
                reason: "boom".to_string(),
            },
        );
        assert_eq!(told, Told::Backoff { due: 13.0 });
        assert_eq!(s.backoffs().len(), 1);
        assert_eq!(s.backoffs()[0].attempt, 2);
        let b = s.take_backoff(0).unwrap();
        let told = s.tell(
            &retry,
            &t,
            20.0,
            0,
            0,
            b.x,
            f64::NAN,
            b.attempt,
            EvalOutcome::Failed {
                reason: "boom".to_string(),
            },
        );
        assert_eq!(told, Told::Dropped);
        assert_eq!(s.completed(), 0);
        assert_eq!(s.resolved(), 1);
    }

    #[test]
    fn commit_clamps_non_monotone_times() {
        let mut s = SessionState::new(1, 3, &[]);
        let t = Telemetry::disabled();
        s.commit(&t, 10.0, 0, 0, 1.0, vec![0.1]);
        s.commit(&t, 7.0, 0, 1, 2.0, vec![0.2]);
        assert_eq!(s.trace().points()[1].time, 10.0);
    }

    #[test]
    fn take_due_backoffs_orders_by_task() {
        let mut s = SessionState::new(2, 8, &[]);
        for (task, due) in [(3usize, 1.0), (1, 2.0), (2, 0.5), (4, 9.0)] {
            s.backoffs.push(PendingBackoff {
                due,
                worker: 0,
                task,
                attempt: 2,
                x: vec![0.0],
            });
        }
        let due = s.take_due_backoffs(2.0);
        let tasks: Vec<usize> = due.iter().map(|b| b.task).collect();
        assert_eq!(tasks, vec![1, 2, 3]);
        assert_eq!(s.backoffs().len(), 1);
    }

    #[test]
    fn parts_round_trip_preserves_everything() {
        let mut s = SessionState::new(3, 10, &[vec![0.9]]);
        let t = Telemetry::disabled();
        s.clock = 12.5;
        s.commit(&t, 4.0, 0, 0, 1.0, vec![0.1]);
        s.commit(&t, 6.0, 1, 1, 0.5, vec![0.2]);
        s.schedule.add_with(0, 0, 0.0, 4.0, false);
        s.schedule.add_with(1, 1, 0.0, 6.0, false);
        // An active in-flight attempt whose span must be stripped.
        s.schedule.add_with(2, 2, 6.0, 14.0, false);
        s.begin(2, 1, vec![0.7], 2, Some(6.0), 14.0);
        s.backoffs.push(PendingBackoff {
            due: 13.0,
            worker: 0,
            task: 3,
            attempt: 2,
            x: vec![0.3],
        });
        s.issued = 4;

        let parts = s.to_parts();
        assert_eq!(parts.spans.len(), 2, "in-flight span stripped");
        assert_eq!(parts.inflight.len(), 1);
        assert_eq!(parts.backoffs.len(), 1);
        assert_eq!(parts.clock, 12.5);

        let rebuilt = SessionState::from_parts(parts.clone());
        assert_eq!(rebuilt.data, s.data);
        assert_eq!(rebuilt.trace, s.trace);
        assert!(rebuilt.busy.is_empty(), "busy rebuilt by re-issue");
        assert_eq!(rebuilt.inflight, s.inflight);
        assert_eq!(rebuilt.backoffs, s.backoffs);
        assert_eq!(rebuilt.issued, 4);
        // A second capture of the rebuilt session is identical.
        assert_eq!(rebuilt.to_parts(), parts);
    }

    #[test]
    fn trigger_fires_on_eval_cadence() {
        let mut tr = CheckpointTrigger::new(Some(3), None);
        assert!(!tr.fire(2, 0.0));
        assert!(tr.fire(3, 0.0));
        assert!(!tr.fire(5, 0.0));
        assert!(tr.fire(6, 0.0));
    }

    #[test]
    fn trigger_fires_on_clock_cadence_and_rearm_resets() {
        let mut tr = CheckpointTrigger::new(None, Some(10.0));
        assert!(!tr.fire(1, 9.9));
        assert!(tr.fire(1, 10.0));
        assert!(!tr.fire(1, 19.0));
        tr.rearm(1, 100.0);
        assert!(!tr.fire(1, 105.0));
        assert!(tr.fire(1, 110.0));
    }

    #[test]
    fn disabled_trigger_never_fires() {
        let mut tr = CheckpointTrigger::new(None, None);
        assert!(!tr.fire(usize::MAX - 1, 1e12));
    }
}
