use serde::{Deserialize, Serialize};

/// One task occupying one worker for a time interval (the bars of the
/// paper's Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpan {
    /// Worker index.
    pub worker: usize,
    /// Evaluation index (order of issue).
    pub task: usize,
    /// Start time (s).
    pub start: f64,
    /// End time (s).
    pub end: f64,
    /// Whether the span ended in failure (crashed, non-finite,
    /// abandoned on timeout). Failed spans still occupy the worker but
    /// are excluded from [`Schedule::utilization`].
    pub failed: bool,
}

/// A complete worker schedule for an optimization run, with utilization
/// accounting — the quantitative content of the paper's Fig. 1.
///
/// # Example
///
/// ```
/// use easybo_exec::Schedule;
///
/// let mut s = Schedule::new(2);
/// s.add(0, 0, 0.0, 10.0);
/// s.add(1, 1, 0.0, 4.0); // worker 1 idles from 4.0 to 10.0
/// assert_eq!(s.makespan(), 10.0);
/// assert!((s.utilization() - 0.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    workers: usize,
    spans: Vec<TaskSpan>,
}

impl Schedule {
    /// Creates an empty schedule over `workers` workers.
    pub fn new(workers: usize) -> Self {
        Schedule {
            workers,
            spans: Vec::new(),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Records a successful task span.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= workers` or `end < start`.
    pub fn add(&mut self, worker: usize, task: usize, start: f64, end: f64) {
        self.add_with(worker, task, start, end, false);
    }

    /// Records a task span, flagging whether the attempt failed
    /// (crashed, returned a non-finite FOM, or was abandoned on
    /// timeout).
    ///
    /// # Panics
    ///
    /// Panics if `worker >= workers` or `end < start`.
    pub fn add_with(&mut self, worker: usize, task: usize, start: f64, end: f64, failed: bool) {
        assert!(worker < self.workers, "worker {worker} out of range");
        assert!(end >= start, "task ends before it starts");
        self.spans.push(TaskSpan {
            worker,
            task,
            start,
            end,
            failed,
        });
    }

    /// All spans in insertion order.
    pub fn spans(&self) -> &[TaskSpan] {
        &self.spans
    }

    /// Spans executed by one worker.
    pub fn worker_spans(&self, worker: usize) -> Vec<TaskSpan> {
        self.spans
            .iter()
            .filter(|s| s.worker == worker)
            .copied()
            .collect()
    }

    /// Completion time of the whole schedule.
    pub fn makespan(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Total busy time across workers, failed spans included (a worker
    /// occupied by a doomed attempt is still occupied).
    pub fn busy_time(&self) -> f64 {
        self.spans.iter().map(|s| s.end - s.start).sum()
    }

    /// Busy time spent on spans that completed successfully.
    pub fn productive_time(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| !s.failed)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Busy time lost to failed/abandoned spans.
    pub fn failed_time(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.failed)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Fraction of `workers × makespan` spent on *productive* work, in
    /// [0, 1]: failed/abandoned spans count as waste, alongside idle
    /// time. Returns 1.0 for an empty schedule.
    pub fn utilization(&self) -> f64 {
        let span = self.makespan() * self.workers as f64;
        if span <= 0.0 {
            return 1.0;
        }
        (self.productive_time() / span).min(1.0)
    }

    /// Renders the schedule as CSV (`worker,task,start_s,end_s`) for
    /// external Gantt plotting (the paper's Fig. 1).
    ///
    /// ```
    /// use easybo_exec::Schedule;
    /// let mut s = Schedule::new(1);
    /// s.add(0, 0, 0.0, 2.5);
    /// assert!(s.to_csv().contains("0,0,0,2.5"));
    /// ```
    pub fn to_csv(&self) -> String {
        let mut out = String::from("worker,task,start_s,end_s\n");
        for span in &self.spans {
            out.push_str(&format!(
                "{},{},{},{}\n",
                span.worker, span.task, span.start, span.end
            ));
        }
        out
    }

    /// Total idle time across workers (before the makespan).
    pub fn idle_time(&self) -> f64 {
        (self.makespan() * self.workers as f64 - self.busy_time()).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn barrier_schedule() -> Schedule {
        // Synchronous batch of 3 with costs 4, 7, 10: everyone waits for 10.
        let mut s = Schedule::new(3);
        s.add(0, 0, 0.0, 4.0);
        s.add(1, 1, 0.0, 7.0);
        s.add(2, 2, 0.0, 10.0);
        // Next round starts at the barrier.
        s.add(0, 3, 10.0, 15.0);
        s.add(1, 4, 10.0, 16.0);
        s.add(2, 5, 10.0, 13.0);
        s
    }

    #[test]
    fn makespan_and_busy_time() {
        let s = barrier_schedule();
        assert_eq!(s.makespan(), 16.0);
        assert_eq!(s.busy_time(), 4.0 + 7.0 + 10.0 + 5.0 + 6.0 + 3.0);
    }

    #[test]
    fn utilization_reflects_barrier_waste() {
        let s = barrier_schedule();
        let util = s.utilization();
        assert!(util < 0.75, "barrier schedule should waste time: {util}");
        assert!(s.idle_time() > 0.0);
    }

    #[test]
    fn async_packing_beats_barrier() {
        // The same 6 task durations greedily packed with no barrier.
        let durations = [4.0, 7.0, 10.0, 5.0, 6.0, 3.0];
        let mut s = Schedule::new(3);
        let mut free = [0.0f64; 3];
        for (i, d) in durations.iter().enumerate() {
            let w = (0..3).min_by(|&a, &b| free[a].total_cmp(&free[b])).unwrap();
            s.add(w, i, free[w], free[w] + d);
            free[w] += d;
        }
        assert!(s.makespan() < barrier_schedule().makespan());
        assert!(s.utilization() > barrier_schedule().utilization());
    }

    #[test]
    fn worker_spans_filtering() {
        let s = barrier_schedule();
        let w0 = s.worker_spans(0);
        assert_eq!(w0.len(), 2);
        assert!(w0.iter().all(|t| t.worker == 0));
    }

    #[test]
    fn empty_schedule_edge_cases() {
        let s = Schedule::new(4);
        assert_eq!(s.makespan(), 0.0);
        assert_eq!(s.utilization(), 1.0);
        assert_eq!(s.idle_time(), 0.0);
    }

    #[test]
    fn failed_spans_occupy_but_do_not_produce() {
        let mut s = Schedule::new(2);
        s.add(0, 0, 0.0, 10.0);
        s.add_with(1, 1, 0.0, 5.0, true); // abandoned on timeout
        s.add(1, 2, 5.0, 10.0);
        assert_eq!(s.makespan(), 10.0);
        assert_eq!(s.busy_time(), 20.0);
        assert_eq!(s.productive_time(), 15.0);
        assert_eq!(s.failed_time(), 5.0);
        // Utilization counts only productive work: 15 / (2 × 10).
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        let failed: Vec<_> = s.spans().iter().filter(|t| t.failed).collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].task, 1);
    }

    #[test]
    fn add_records_successful_spans() {
        let mut s = Schedule::new(1);
        s.add(0, 0, 0.0, 1.0);
        assert!(!s.spans()[0].failed);
        assert_eq!(s.failed_time(), 0.0);
        assert_eq!(s.productive_time(), s.busy_time());
    }

    #[test]
    fn all_failed_schedule_has_zero_utilization() {
        let mut s = Schedule::new(1);
        s.add_with(0, 0, 0.0, 4.0, true);
        s.add_with(0, 1, 4.0, 8.0, true);
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.busy_time(), 8.0);
        assert_eq!(s.failed_time(), 8.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_worker() {
        let mut s = Schedule::new(1);
        s.add(1, 0, 0.0, 1.0);
    }

    #[test]
    fn aggregates_are_insertion_order_invariant() {
        // Real threads report completions out of order; every aggregate
        // must be a pure function of the span *set*, not the insertion
        // sequence.
        let spans = [
            (0usize, 0usize, 0.0, 4.0),
            (1, 1, 0.0, 7.0),
            (2, 2, 0.0, 10.0),
            (0, 3, 4.0, 9.0),
            (1, 4, 7.0, 13.0),
            (2, 5, 10.0, 13.0),
            (0, 6, 9.0, 16.0),
        ];
        let mut ordered = Schedule::new(3);
        for &(w, t, a, b) in &spans {
            ordered.add(w, t, a, b);
        }
        // A deterministic shuffle: stride through the list coprime to
        // its length.
        let mut shuffled = Schedule::new(3);
        for i in 0..spans.len() {
            let (w, t, a, b) = spans[(i * 3) % spans.len()];
            shuffled.add(w, t, a, b);
        }
        assert_eq!(shuffled.makespan(), ordered.makespan());
        assert_eq!(shuffled.busy_time(), ordered.busy_time());
        assert_eq!(shuffled.utilization(), ordered.utilization());
        assert_eq!(shuffled.idle_time(), ordered.idle_time());
        for w in 0..3 {
            assert_eq!(
                shuffled.worker_spans(w).len(),
                ordered.worker_spans(w).len()
            );
        }
    }
}
