//! Parameter-dependent simulation-cost model.
//!
//! HSPICE runtimes depend on the design point (bias currents change
//! convergence behavior, reactive components change transient time
//! constants), which is precisely why asynchronous batching beats the
//! synchronous barrier. This model reproduces that heterogeneity
//! deterministically: the cost surface is a smooth random multi-harmonic
//! function of the (normalized) design variables plus a small per-point
//! hash jitter, scaled to a configured mean and relative spread.

use easybo_opt::Bounds;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Deterministic, parameter-dependent simulation-time model.
///
/// Costs are `base · (1 + spread · s(x))` with `s(x) ∈ [-1, 1]` a smooth
/// pseudo-random surface, so the *distribution* of costs across a run has
/// mean ≈ `base` and support ≈ `base·[1−spread, 1+spread]` — matching the
/// per-simulation statistics implied by the paper's Tables I/II (≈38.7s per
/// op-amp simulation, ≈52.7s per class-E simulation, with enough spread
/// that a batch of 15 waits ≈15% longer than the mean under a barrier).
///
/// # Example
///
/// ```
/// use easybo_exec::SimTimeModel;
/// use easybo_opt::Bounds;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::unit_cube(4)?;
/// let model = SimTimeModel::new(&bounds, 38.7, 0.17, 42);
/// let c = model.cost(&[0.2, 0.4, 0.6, 0.8]);
/// assert!(c >= 38.7 * 0.8 && c <= 38.7 * 1.2);
/// // Same point, same cost — the model is a pure function.
/// assert_eq!(c, model.cost(&[0.2, 0.4, 0.6, 0.8]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimTimeModel {
    bounds: Bounds,
    base: f64,
    spread: f64,
    /// Random direction/phase per harmonic: (weights per dim, frequency, phase).
    harmonics: Vec<(Vec<f64>, f64, f64)>,
    /// Relative magnitude of the per-point hash jitter.
    jitter: f64,
    seed: u64,
}

impl SimTimeModel {
    /// Creates a model with mean cost `base` seconds and relative spread
    /// `spread` (e.g. 0.17 ⇒ costs mostly within ±17% of the mean) over the
    /// given design space. `seed` fixes the random cost surface.
    ///
    /// # Panics
    ///
    /// Panics if `base <= 0`, or `spread` is outside `[0, 0.95]`.
    pub fn new(bounds: &Bounds, base: f64, spread: f64, seed: u64) -> Self {
        assert!(base > 0.0, "base cost must be positive, got {base}");
        assert!(
            (0.0..=0.95).contains(&spread),
            "spread must be in [0, 0.95], got {spread}"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5e1f_cafe);
        let d = bounds.dim();
        let harmonics = (0..3)
            .map(|_| {
                let mut w: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let norm = w.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-9);
                for v in &mut w {
                    *v /= norm;
                }
                let freq = rng.gen_range(1.0..4.0) * std::f64::consts::PI;
                let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                (w, freq, phase)
            })
            .collect();
        SimTimeModel {
            bounds: bounds.clone(),
            base,
            spread,
            harmonics,
            jitter: 0.25,
            seed,
        }
    }

    /// Mean cost (seconds).
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Relative spread.
    pub fn spread(&self) -> f64 {
        self.spread
    }

    /// Deterministic cost (seconds) of simulating design `x`.
    ///
    /// Points outside the design space are clamped first.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the design space dimension.
    pub fn cost(&self, x: &[f64]) -> f64 {
        let u = self.bounds.to_unit(&self.bounds.clamp(x));
        // Smooth multi-harmonic surface in [-1, 1].
        let mut s = 0.0;
        for (w, freq, phase) in &self.harmonics {
            let proj: f64 = w.iter().zip(u.iter()).map(|(a, b)| a * b).sum();
            s += (freq * proj + phase).sin();
        }
        s /= self.harmonics.len() as f64;
        // Per-point jitter from a hash of the coordinates (deterministic).
        let j = 2.0 * (Self::hash01(&u, self.seed) - 0.5);
        let shape = ((1.0 - self.jitter) * s + self.jitter * j).clamp(-1.0, 1.0);
        self.base * (1.0 + self.spread * shape)
    }

    /// Uniform-ish hash of a point into [0, 1).
    fn hash01(u: &[f64], seed: u64) -> f64 {
        let mut h = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for &v in u {
            h ^= v.to_bits();
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
        }
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(spread: f64) -> (Bounds, SimTimeModel) {
        let bounds = Bounds::unit_cube(5).unwrap();
        let m = SimTimeModel::new(&bounds, 40.0, spread, 123);
        (bounds, m)
    }

    #[test]
    fn costs_within_spread_band() {
        let (bounds, m) = model(0.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let x = bounds.sample_uniform(&mut rng);
            let c = m.cost(&x);
            assert!((40.0 * 0.8 - 1e-9..=40.0 * 1.2 + 1e-9).contains(&c), "{c}");
        }
    }

    #[test]
    fn mean_close_to_base() {
        let (bounds, m) = model(0.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let costs: Vec<f64> = (0..2000)
            .map(|_| m.cost(&bounds.sample_uniform(&mut rng)))
            .collect();
        let mean = easybo_costs_mean(&costs);
        assert!((mean - 40.0).abs() < 2.0, "mean {mean}");
    }

    fn easybo_costs_mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn costs_actually_vary() {
        let (bounds, m) = model(0.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let costs: Vec<f64> = (0..200)
            .map(|_| m.cost(&bounds.sample_uniform(&mut rng)))
            .collect();
        let lo = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = costs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi - lo > 40.0 * 0.15, "spread too small: {lo}..{hi}");
    }

    #[test]
    fn zero_spread_is_constant() {
        let (bounds, m) = model(0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..50 {
            assert_eq!(m.cost(&bounds.sample_uniform(&mut rng)), 40.0);
        }
    }

    #[test]
    fn different_seeds_give_different_surfaces() {
        let bounds = Bounds::unit_cube(3).unwrap();
        let a = SimTimeModel::new(&bounds, 10.0, 0.3, 1);
        let b = SimTimeModel::new(&bounds, 10.0, 0.3, 2);
        let x = [0.3, 0.6, 0.9];
        assert_ne!(a.cost(&x), b.cost(&x));
    }

    #[test]
    fn nearby_points_have_similar_base_surface() {
        // The harmonic part is smooth; jitter is bounded by 25% of spread.
        let (_, m) = model(0.2);
        let a = m.cost(&[0.5, 0.5, 0.5, 0.5, 0.5]);
        let b = m.cost(&[0.5001, 0.5, 0.5, 0.5, 0.5]);
        // Max possible jump: jitter flips sign = 2*0.25*spread*base = 4.0.
        assert!((a - b).abs() <= 4.1, "jump {}", (a - b).abs());
    }

    #[test]
    fn out_of_bounds_points_are_clamped() {
        let (_, m) = model(0.2);
        let inside = m.cost(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        let outside = m.cost(&[5.0, 5.0, 5.0, 5.0, 5.0]);
        assert_eq!(inside, outside);
    }

    #[test]
    #[should_panic(expected = "spread")]
    fn rejects_excessive_spread() {
        let bounds = Bounds::unit_cube(1).unwrap();
        let _ = SimTimeModel::new(&bounds, 1.0, 0.99, 0);
    }
}
