//! Shared retry/backoff policy for fault-tolerant evaluation.
//!
//! Both executors drive the same [`RetryPolicy`]: an attempt that fails
//! (simulator crash, non-finite FOM, timeout, worker death) is requeued
//! with exponential backoff on the *run clock* — virtual seconds under
//! `VirtualExecutor`, scaled real seconds under `ThreadedExecutor` — up
//! to `max_attempts` total tries, after which [`FailureAction`] decides
//! what the optimizer observes.

/// What to do with a task whose attempts are exhausted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureAction {
    /// Record the raw observed value as a completion, even when it is
    /// non-finite. This is the legacy behaviour: failures are
    /// indistinguishable from successes and it is the caller's problem
    /// to filter the dataset.
    Record,
    /// Drop the task: no observation enters the dataset or the trace.
    Drop,
    /// Record the configured finite penalty value as the observation,
    /// teaching the surrogate that the region is bad without poisoning
    /// it with NaN.
    Penalty(f64),
}

/// Retry/backoff/timeout configuration shared by both executors.
///
/// Defaults ([`RetryPolicy::default`]): 3 attempts per task, backoff of
/// `1.0 × 2^(k-1)` run-clock seconds after the `k`-th failure, no
/// per-attempt timeout, and exhausted tasks are dropped. The legacy
/// no-op policy is [`RetryPolicy::none`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per task (first try included). At least 1.
    pub max_attempts: usize,
    /// Backoff before the first retry, in run-clock seconds.
    pub backoff_base: f64,
    /// Multiplier applied to the backoff after each further failure.
    pub backoff_factor: f64,
    /// Per-attempt deadline in run-clock seconds; an attempt whose cost
    /// exceeds it is abandoned as [`crate::EvalOutcome::TimedOut`].
    pub timeout: Option<f64>,
    /// What happens once every attempt has failed.
    pub on_exhausted: FailureAction,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: 1.0,
            backoff_factor: 2.0,
            timeout: None,
            on_exhausted: FailureAction::Drop,
        }
    }
}

impl RetryPolicy {
    /// The legacy policy: one attempt, no timeout, record whatever came
    /// back. Running either executor with this policy is bit-identical
    /// to the pre-fault-tolerance code paths.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: 0.0,
            backoff_factor: 1.0,
            timeout: None,
            on_exhausted: FailureAction::Record,
        }
    }

    /// Sets the total attempts per task (clamped to at least 1).
    pub fn max_attempts(mut self, n: usize) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Sets the backoff schedule: `base × factor^(k-1)` seconds after
    /// the `k`-th failed attempt.
    pub fn backoff(mut self, base: f64, factor: f64) -> Self {
        assert!(
            base >= 0.0 && factor >= 1.0,
            "backoff needs base >= 0 and factor >= 1"
        );
        self.backoff_base = base;
        self.backoff_factor = factor;
        self
    }

    /// Sets the per-attempt deadline in run-clock seconds.
    pub fn timeout(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "timeout must be positive");
        self.timeout = Some(seconds);
        self
    }

    /// Sets the action for exhausted tasks. A [`FailureAction::Penalty`]
    /// value must be finite.
    pub fn on_exhausted(mut self, action: FailureAction) -> Self {
        if let FailureAction::Penalty(p) = action {
            assert!(p.is_finite(), "penalty value must be finite");
        }
        self.on_exhausted = action;
        self
    }

    /// Backoff delay after `failed_attempts` failures (1-based):
    /// `base × factor^(failed_attempts - 1)`.
    pub fn delay(&self, failed_attempts: usize) -> f64 {
        self.backoff_base * self.backoff_factor.powi(failed_attempts.max(1) as i32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_matches_legacy_semantics() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.timeout, None);
        assert_eq!(p.on_exhausted, FailureAction::Record);
    }

    #[test]
    fn delay_grows_exponentially() {
        let p = RetryPolicy::default().backoff(2.0, 3.0);
        assert_eq!(p.delay(1), 2.0);
        assert_eq!(p.delay(2), 6.0);
        assert_eq!(p.delay(3), 18.0);
    }

    #[test]
    fn builders_clamp_and_validate() {
        let p = RetryPolicy::default().max_attempts(0);
        assert_eq!(p.max_attempts, 1);
        let p = RetryPolicy::default()
            .timeout(120.0)
            .on_exhausted(FailureAction::Penalty(-10.0));
        assert_eq!(p.timeout, Some(120.0));
        assert_eq!(p.on_exhausted, FailureAction::Penalty(-10.0));
    }

    #[test]
    #[should_panic(expected = "penalty value must be finite")]
    fn non_finite_penalty_is_rejected() {
        let _ = RetryPolicy::default().on_exhausted(FailureAction::Penalty(f64::NAN));
    }
}
