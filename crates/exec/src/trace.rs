use serde::{Deserialize, Serialize};

/// One completed evaluation on the run timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Virtual wall-clock time (seconds) of completion.
    pub time: f64,
    /// Total evaluations completed at this instant (1-based).
    pub completed: usize,
    /// Observed value of this evaluation.
    pub value: f64,
    /// Best value observed up to and including this evaluation.
    pub best_so_far: f64,
}

/// The best-so-far timeline of an optimization run — the data behind the
/// paper's Figures 4 and 6 (optimization result vs wall-clock time).
///
/// # Example
///
/// ```
/// use easybo_exec::RunTrace;
///
/// let mut t = RunTrace::new();
/// t.record(10.0, 1.0);
/// t.record(20.0, 0.5);
/// t.record(30.0, 2.0);
/// assert_eq!(t.best_at(25.0), Some(1.0));
/// assert_eq!(t.best_at(30.0), Some(2.0));
/// assert_eq!(t.best_at(5.0), None);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunTrace {
    points: Vec<TracePoint>,
}

impl RunTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        RunTrace::default()
    }

    /// Records a completed evaluation at `time` with observed `value`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the previous record (the virtual
    /// clock must be monotone).
    pub fn record(&mut self, time: f64, value: f64) {
        if let Some(last) = self.points.last() {
            assert!(
                time >= last.time,
                "trace time went backwards: {time} after {}",
                last.time
            );
        }
        let best = self
            .points
            .last()
            .map_or(value, |p| p.best_so_far.max(value));
        self.points.push(TracePoint {
            time,
            completed: self.points.len() + 1,
            value,
            best_so_far: best,
        });
    }

    /// All trace points in completion order.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of completed evaluations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether anything has completed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total virtual time of the run (time of the last completion).
    pub fn total_time(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.time)
    }

    /// Final best value.
    pub fn final_best(&self) -> Option<f64> {
        self.points.last().map(|p| p.best_so_far)
    }

    /// Best value known at virtual time `t` (`None` before the first
    /// completion).
    pub fn best_at(&self, t: f64) -> Option<f64> {
        let idx = self.points.partition_point(|p| p.time <= t);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].best_so_far)
        }
    }

    /// Earliest time at which the best-so-far reached `target`
    /// (`None` if never).
    pub fn time_to_reach(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.best_so_far >= target)
            .map(|p| p.time)
    }

    /// Renders the trace as CSV (`time_s,completed,value,best_so_far`),
    /// ready for external plotting of the paper's Figs. 4/6.
    ///
    /// ```
    /// use easybo_exec::RunTrace;
    /// let mut t = RunTrace::new();
    /// t.record(1.5, 2.0);
    /// let csv = t.to_csv();
    /// assert!(csv.starts_with("time_s,completed,value,best_so_far\n"));
    /// assert!(csv.contains("1.5,1,2,2"));
    /// ```
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,completed,value,best_so_far\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{}\n",
                p.time, p.completed, p.value, p.best_so_far
            ));
        }
        out
    }

    /// Samples the best-so-far curve at `n` evenly spaced times over
    /// `[0, total_time]`, returning `(time, best)` pairs (skipping times
    /// before the first completion).
    pub fn sampled(&self, n: usize) -> Vec<(f64, f64)> {
        let total = self.total_time();
        if self.is_empty() || n == 0 {
            return Vec::new();
        }
        (0..=n)
            .filter_map(|i| {
                let t = total * i as f64 / n as f64;
                self.best_at(t).map(|b| (t, b))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunTrace {
        let mut t = RunTrace::new();
        t.record(10.0, 1.0);
        t.record(20.0, 3.0);
        t.record(20.0, 2.0); // tie in time is allowed
        t.record(45.0, 5.0);
        t
    }

    #[test]
    fn best_so_far_is_monotone() {
        let t = sample();
        let bests: Vec<f64> = t.points().iter().map(|p| p.best_so_far).collect();
        assert_eq!(bests, vec![1.0, 3.0, 3.0, 5.0]);
    }

    #[test]
    fn completed_counts() {
        let t = sample();
        let counts: Vec<usize> = t.points().iter().map(|p| p.completed).collect();
        assert_eq!(counts, vec![1, 2, 3, 4]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn best_at_lookups() {
        let t = sample();
        assert_eq!(t.best_at(9.9), None);
        assert_eq!(t.best_at(10.0), Some(1.0));
        assert_eq!(t.best_at(20.0), Some(3.0));
        assert_eq!(t.best_at(44.0), Some(3.0));
        assert_eq!(t.best_at(1000.0), Some(5.0));
    }

    #[test]
    fn time_to_reach_targets() {
        let t = sample();
        assert_eq!(t.time_to_reach(1.0), Some(10.0));
        assert_eq!(t.time_to_reach(2.5), Some(20.0));
        assert_eq!(t.time_to_reach(5.0), Some(45.0));
        assert_eq!(t.time_to_reach(9.0), None);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn rejects_time_reversal() {
        let mut t = RunTrace::new();
        t.record(10.0, 1.0);
        t.record(5.0, 2.0);
    }

    #[test]
    fn totals_and_final() {
        let t = sample();
        assert_eq!(t.total_time(), 45.0);
        assert_eq!(t.final_best(), Some(5.0));
        assert_eq!(RunTrace::new().final_best(), None);
        assert_eq!(RunTrace::new().total_time(), 0.0);
    }

    #[test]
    fn clamped_recording_handles_shuffled_finish_times() {
        // The threaded executor receives completions in real-thread
        // order, which can disagree with finish-time order; it clamps
        // each timestamp forward (`t.max(total_time())`) before
        // recording. Verify that discipline keeps the trace valid and
        // the best-so-far curve identical to the sorted ground truth.
        let finishes: [(f64, f64); 5] = [
            (30.0, 0.5),
            (10.0, 2.0), // arrives late despite finishing first
            (20.0, 1.0),
            (55.0, 3.0),
            (40.0, 2.5),
        ];
        let mut clamped = RunTrace::new();
        for &(t, v) in &finishes {
            clamped.record(t.max(clamped.total_time()), v);
        }
        // Monotone times, monotone best.
        for w in clamped.points().windows(2) {
            assert!(w[1].time >= w[0].time);
            assert!(w[1].best_so_far >= w[0].best_so_far);
        }
        assert_eq!(clamped.len(), finishes.len());
        assert_eq!(clamped.final_best(), Some(3.0));
        // The final state agrees with an in-order replay of the same
        // completions; only intermediate timestamps were clamped.
        let mut sorted = finishes;
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut ordered = RunTrace::new();
        for &(t, v) in &sorted {
            ordered.record(t, v);
        }
        assert_eq!(clamped.total_time(), ordered.total_time());
        assert_eq!(clamped.final_best(), ordered.final_best());
    }

    #[test]
    fn sampled_curve() {
        let t = sample();
        let s = t.sampled(9);
        assert!(!s.is_empty());
        // Monotone in both time and value.
        for w in s.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(s.last().unwrap().1, 5.0);
        assert!(RunTrace::new().sampled(5).is_empty());
    }
}
