use serde::{Deserialize, Serialize};

/// Observed evaluations accumulated during an optimization run.
///
/// # Example
///
/// ```
/// use easybo_exec::Dataset;
///
/// let mut d = Dataset::new();
/// d.push(vec![0.1, 0.2], 1.5);
/// d.push(vec![0.9, 0.3], 2.5);
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.best().unwrap().1, 2.5);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Appends an observation.
    pub fn push(&mut self, x: Vec<f64>, y: f64) {
        self.x.push(x);
        self.y.push(y);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Observed inputs.
    pub fn xs(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// Observed values.
    pub fn ys(&self) -> &[f64] {
        &self.y
    }

    /// Best (maximum) *finite* observation, if any, as `(x, y)`.
    ///
    /// Non-finite values (NaN and ±Inf, e.g. non-convergent simulator
    /// runs recorded verbatim) are never candidates: an `+Inf` "best"
    /// would make every improvement test vacuous and a `-Inf` one would
    /// poison incumbent-based acquisitions.
    pub fn best(&self) -> Option<(&[f64], f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &v) in self.y.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, v)| (self.x[i].as_slice(), v))
    }

    /// Best observed value, or `-inf` when empty.
    pub fn best_value(&self) -> f64 {
        self.best().map_or(f64::NEG_INFINITY, |(_, v)| v)
    }
}

/// A query point currently being evaluated by a worker (the "busy" points
/// that EasyBO's penalization scheme hallucinates observations for).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusyPoint {
    /// The design under evaluation.
    pub x: Vec<f64>,
    /// Executor-wide task id (issue order). Uniquely identifies this
    /// in-flight evaluation even when several workers run identical
    /// `x` vectors.
    pub task: usize,
    /// Which worker is running it.
    pub worker: usize,
    /// Virtual time at which it will finish.
    pub finish_time: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_dataset() {
        let d = Dataset::new();
        assert!(d.is_empty());
        assert_eq!(d.best(), None);
        assert_eq!(d.best_value(), f64::NEG_INFINITY);
    }

    #[test]
    fn best_tracks_maximum() {
        let mut d = Dataset::new();
        d.push(vec![0.0], 1.0);
        d.push(vec![1.0], 3.0);
        d.push(vec![2.0], 2.0);
        let (x, y) = d.best().unwrap();
        assert_eq!(x, &[1.0]);
        assert_eq!(y, 3.0);
    }

    #[test]
    fn best_skips_nan() {
        let mut d = Dataset::new();
        d.push(vec![0.0], f64::NAN);
        d.push(vec![1.0], 1.0);
        assert_eq!(d.best_value(), 1.0);
    }

    #[test]
    fn best_skips_positive_infinity() {
        let mut d = Dataset::new();
        d.push(vec![0.0], f64::INFINITY);
        d.push(vec![1.0], 2.0);
        let (x, y) = d.best().unwrap();
        assert_eq!(x, &[1.0]);
        assert_eq!(y, 2.0);
    }

    #[test]
    fn best_skips_negative_infinity() {
        let mut d = Dataset::new();
        d.push(vec![0.0], f64::NEG_INFINITY);
        d.push(vec![1.0], -5.0);
        assert_eq!(d.best_value(), -5.0);
    }

    #[test]
    fn all_non_finite_dataset_has_no_best() {
        let mut d = Dataset::new();
        d.push(vec![0.0], f64::NAN);
        d.push(vec![1.0], f64::INFINITY);
        d.push(vec![2.0], f64::NEG_INFINITY);
        assert_eq!(d.best(), None);
        assert_eq!(d.best_value(), f64::NEG_INFINITY);
    }

    #[test]
    fn accessors_round_trip() {
        let mut d = Dataset::new();
        d.push(vec![0.5, 0.6], -1.0);
        assert_eq!(d.xs(), &[vec![0.5, 0.6]]);
        assert_eq!(d.ys(), &[-1.0]);
        assert_eq!(d.len(), 1);
    }
}
