//! Multi-corner fan-out: one query, k simulations, worst-case aggregate.
//!
//! Real sign-off evaluates every candidate sizing at several
//! process/voltage/temperature corners and keeps the *worst* figure of
//! merit. [`FanOutBlackBox`] models exactly that on top of the existing
//! executor machinery: it looks like a single [`BlackBox`] to the
//! drivers (so retry, chaos injection, sessions and snapshots all apply
//! unchanged), but each evaluation attempt fans out to its member
//! black boxes — one per corner — and aggregates:
//!
//! * **value** — the minimum over corner values (worst case for
//!   maximization),
//! * **cost** — the maximum over corner costs (the corner jobs run in
//!   parallel on the simulation farm, so the attempt is as slow as its
//!   slowest corner),
//! * **outcome** — the first non-Ok corner fails the whole attempt,
//!   with a reason naming the corner, so a retry re-runs all corners
//!   under a fresh `(task, attempt)` fault draw.
//!
//! The [`AttemptContext`] is forwarded verbatim to every member, so a
//! per-corner [`FaultyBlackBox`](crate::FaultyBlackBox) wrapper (seeded
//! differently per corner) keeps chaos runs exactly reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};

use easybo_opt::Bounds;

use crate::blackbox::{AttemptContext, BlackBox, EvalOutcome, Evaluation};

/// One query fanned out to k member black boxes with worst-case
/// aggregation. See the module docs for the aggregation rules.
pub struct FanOutBlackBox {
    name: String,
    bounds: Bounds,
    members: Vec<(String, Box<dyn BlackBox>)>,
    /// Fallback task counter for callers of plain `evaluate`.
    serial: AtomicUsize,
}

impl FanOutBlackBox {
    /// Creates an empty fan-out over `bounds`. Evaluating with no
    /// members is a failed attempt, never a silent success.
    pub fn new(name: impl Into<String>, bounds: Bounds) -> Self {
        FanOutBlackBox {
            name: name.into(),
            bounds,
            members: Vec::new(),
            serial: AtomicUsize::new(0),
        }
    }

    /// Adds a member (builder style). `label` names the corner in
    /// failure reasons; keep it free of `"` and `\` so telemetry JSONL
    /// round-trips. The member's bounds must match the fan-out's.
    pub fn with_member(mut self, label: impl Into<String>, member: Box<dyn BlackBox>) -> Self {
        assert_eq!(
            member.bounds().dim(),
            self.bounds.dim(),
            "fan-out member dimensionality mismatch"
        );
        self.members.push((label.into(), member));
        self
    }

    /// Number of member black boxes (corners).
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// Member labels in evaluation order.
    pub fn member_labels(&self) -> Vec<&str> {
        self.members.iter().map(|(l, _)| l.as_str()).collect()
    }
}

impl BlackBox for FanOutBlackBox {
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let task = self.serial.fetch_add(1, Ordering::Relaxed);
        self.evaluate_attempt(x, AttemptContext::first(task, 0))
    }

    fn evaluate_attempt(&self, x: &[f64], ctx: AttemptContext) -> Evaluation {
        if self.members.is_empty() {
            return Evaluation::failed("fan-out has no members", 0.0);
        }
        let mut worst = f64::INFINITY;
        let mut cost = 0.0f64;
        for (label, member) in &self.members {
            let e = member.evaluate_attempt(x, ctx);
            cost = cost.max(e.cost);
            match e.resolved_outcome() {
                EvalOutcome::Ok => worst = worst.min(e.value),
                EvalOutcome::NonFinite => {
                    // Propagate the member's non-finite value verbatim;
                    // the Ok outcome resolves to NonFinite downstream.
                    return Evaluation::ok(e.value, cost);
                }
                EvalOutcome::Failed { reason } => {
                    return Evaluation::failed(format!("corner {label}: {reason}"), cost);
                }
                EvalOutcome::TimedOut => {
                    return Evaluation::failed(format!("corner {label}: timeout"), cost);
                }
            }
        }
        Evaluation::ok(worst, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyBlackBox};
    use crate::sim_time::SimTimeModel;
    use crate::CostedFunction;

    fn member(scale: f64, seed: u64) -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::unit_cube(1).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.2, seed);
        CostedFunction::new("member", bounds, time, move |x: &[f64]| scale * x[0])
    }

    fn fan() -> FanOutBlackBox {
        FanOutBlackBox::new("fan", Bounds::unit_cube(1).unwrap())
            .with_member("tt", Box::new(member(1.0, 1)))
            .with_member("ss", Box::new(member(0.5, 2)))
            .with_member("ff", Box::new(member(2.0, 3)))
    }

    #[test]
    fn value_is_worst_case_and_cost_is_slowest_corner() {
        let fan = fan();
        let e = fan.evaluate_attempt(&[0.8], AttemptContext::first(0, 0));
        assert!(e.resolved_outcome().is_ok());
        // Worst case over {0.8, 0.4, 1.6} is the ss corner.
        assert_eq!(e.value, 0.4);
        let costs: Vec<f64> = [member(1.0, 1), member(0.5, 2), member(2.0, 3)]
            .iter()
            .map(|m| m.evaluate(&[0.8]).cost)
            .collect();
        assert_eq!(e.cost, costs.iter().cloned().fold(0.0, f64::max));
    }

    #[test]
    fn failing_corner_names_itself() {
        let plan = FaultPlan {
            seed: 5,
            fail_rate: 1.0,
            ..FaultPlan::default()
        };
        let fan = FanOutBlackBox::new("fan", Bounds::unit_cube(1).unwrap())
            .with_member("tt", Box::new(member(1.0, 1)))
            .with_member(
                "ss_85c",
                Box::new(FaultyBlackBox::new(member(0.5, 2), plan)),
            );
        let e = fan.evaluate_attempt(&[0.3], AttemptContext::first(0, 0));
        let reason = e.resolved_outcome().describe();
        assert!(reason.contains("ss_85c"), "{reason}");
        assert!(!e.resolved_outcome().is_ok());
    }

    #[test]
    fn retries_redraw_member_faults() {
        // A 50% per-corner fail rate must differ between attempts 1 and 2
        // for some task — the fan-out forwards (task, attempt) verbatim.
        let plan = FaultPlan {
            seed: 9,
            fail_rate: 0.5,
            ..FaultPlan::default()
        };
        let fan = FanOutBlackBox::new("fan", Bounds::unit_cube(1).unwrap())
            .with_member("tt", Box::new(FaultyBlackBox::new(member(1.0, 1), plan)));
        let differs = (0..40).any(|t| {
            let a = fan.evaluate_attempt(
                &[0.5],
                AttemptContext {
                    task: t,
                    attempt: 1,
                    worker: 0,
                    panics_caught: false,
                },
            );
            let b = fan.evaluate_attempt(
                &[0.5],
                AttemptContext {
                    task: t,
                    attempt: 2,
                    worker: 0,
                    panics_caught: false,
                },
            );
            a.resolved_outcome().is_ok() != b.resolved_outcome().is_ok()
        });
        assert!(differs, "attempt number must reach the members");
    }

    #[test]
    fn non_finite_corner_resolves_non_finite() {
        let bounds = Bounds::unit_cube(1).unwrap();
        let time = SimTimeModel::new(&bounds, 1.0, 0.0, 0);
        let bad = CostedFunction::new("bad", bounds.clone(), time, |_: &[f64]| f64::NAN);
        let fan = FanOutBlackBox::new("fan", bounds)
            .with_member("tt", Box::new(member(1.0, 1)))
            .with_member("nan", Box::new(bad));
        let e = fan.evaluate_attempt(&[0.5], AttemptContext::first(0, 0));
        assert_eq!(e.resolved_outcome(), EvalOutcome::NonFinite);
    }

    #[test]
    fn empty_fan_out_fails_loudly() {
        let fan = FanOutBlackBox::new("fan", Bounds::unit_cube(1).unwrap());
        let e = fan.evaluate(&[0.5]);
        assert!(!e.resolved_outcome().is_ok());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let fan = fan();
        let a = fan.evaluate_attempt(&[0.25], AttemptContext::first(3, 1));
        let b = fan.evaluate_attempt(&[0.25], AttemptContext::first(3, 1));
        assert_eq!(a, b);
    }
}
