//! Deterministic fault injection for chaos-testing the executors.
//!
//! [`FaultPlan`] describes a failure regime (crash rate, non-finite FOM
//! rate, stragglers, hangs, panics, per-worker death schedules) and
//! [`FaultyBlackBox`] applies it to any inner [`BlackBox`]. Every fault
//! draw is a pure function of `(plan seed, task, attempt)` through the
//! same splitmix64 stream as [`easybo_opt::parallel::split_seeds`], so
//! a seeded chaos run is exactly reproducible: same seed → same faults
//! on the same tasks, independent of thread count or wall-clock.

use std::panic::panic_any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use easybo_opt::parallel::split_seeds;
use easybo_opt::Bounds;

use crate::blackbox::{AttemptContext, BlackBox, EvalOutcome, Evaluation};

/// Panic payload marking a scheduled worker death. The threaded
/// executor's workers recognise it and exit their loop for good (the
/// crash is reported as [`easybo_telemetry::Event::WorkerCrashed`]);
/// any other panic payload is treated as an ordinary failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerDeath {
    /// The worker that dies.
    pub worker: usize,
}

/// The fault injected into one evaluation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// No fault: the inner evaluation is returned unchanged.
    None,
    /// The simulation crashes: NaN value, `Failed` outcome.
    Fail,
    /// The simulation "succeeds" with a NaN figure of merit.
    NaNValue,
    /// The simulation "succeeds" with a `+Inf` figure of merit.
    PosInf,
    /// The simulation "succeeds" with a `-Inf` figure of merit.
    NegInf,
    /// The simulation hangs: the cost balloons to `hang_cost` and the
    /// attempt fails unless a timeout abandons it first.
    Hang,
    /// The evaluation panics (caught by the threaded executor's
    /// workers; surfaced as a failed attempt by the virtual one).
    Panic,
    /// A straggler: the evaluation succeeds but takes
    /// `straggler_factor ×` the normal cost.
    Straggle,
}

/// A seeded, fully deterministic failure regime.
///
/// Rates are probabilities in `[0, 1]` checked in a fixed priority
/// order (fail, non-finite, hang, panic, straggle) against one uniform
/// draw per `(task, attempt)`; their sum is effectively saturated at 1.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault stream.
    pub seed: u64,
    /// Probability an attempt fails outright.
    pub fail_rate: f64,
    /// Probability an attempt returns a non-finite FOM (NaN, +Inf or
    /// -Inf, chosen deterministically from the same draw).
    pub nonfinite_rate: f64,
    /// Probability an attempt hangs.
    pub hang_rate: f64,
    /// Cost assigned to hung attempts (virtual seconds).
    pub hang_cost: f64,
    /// Probability an attempt panics.
    pub panic_rate: f64,
    /// Probability an attempt straggles.
    pub straggler_rate: f64,
    /// Cost multiplier for stragglers.
    pub straggler_factor: f64,
    /// Per-worker death schedule: `crash_after[w] = Some(n)` kills
    /// worker `w` on its `(n+1)`-th evaluation. Call-order dependent,
    /// so only meaningful where worker assignment is deterministic.
    pub crash_after: Vec<Option<usize>>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            fail_rate: 0.0,
            nonfinite_rate: 0.0,
            hang_rate: 0.0,
            hang_cost: 1e9,
            panic_rate: 0.0,
            straggler_rate: 0.0,
            straggler_factor: 4.0,
            crash_after: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a baseline).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Uniform bits for `(task, attempt)`: last element of a per-task
    /// splitmix64 stream re-split per attempt — a pure function of its
    /// inputs, shared with the parallel-seeding infrastructure.
    fn draw(&self, task: usize, attempt: usize) -> u64 {
        let task_seed = *split_seeds(self.seed, task + 1).last().expect("n >= 1");
        *split_seeds(task_seed, attempt.max(1))
            .last()
            .expect("n >= 1")
    }

    /// The fault injected into attempt `attempt` (1-based) of `task`.
    pub fn decide(&self, task: usize, attempt: usize) -> InjectedFault {
        let bits = self.draw(task, attempt);
        let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
        let mut edge = self.fail_rate;
        if u < edge {
            return InjectedFault::Fail;
        }
        edge += self.nonfinite_rate;
        if u < edge {
            // Sub-select the non-finite flavour from untouched low bits.
            return match bits % 3 {
                0 => InjectedFault::NaNValue,
                1 => InjectedFault::PosInf,
                _ => InjectedFault::NegInf,
            };
        }
        edge += self.hang_rate;
        if u < edge {
            return InjectedFault::Hang;
        }
        edge += self.panic_rate;
        if u < edge {
            return InjectedFault::Panic;
        }
        edge += self.straggler_rate;
        if u < edge {
            return InjectedFault::Straggle;
        }
        InjectedFault::None
    }
}

/// Wraps any [`BlackBox`] and injects the faults a [`FaultPlan`]
/// prescribes. Faults are keyed on `(task, attempt)`, so retries of the
/// same task redraw — a task that failed once can succeed on attempt 2,
/// exactly like a flaky simulator.
pub struct FaultyBlackBox<B> {
    inner: B,
    plan: FaultPlan,
    name: String,
    /// Evaluations completed per worker, for the crash schedule.
    per_worker_evals: Mutex<Vec<usize>>,
    /// Fallback task counter for callers of plain `evaluate`.
    serial: AtomicUsize,
}

impl<B: BlackBox> FaultyBlackBox<B> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        let name = format!("faulty({})", inner.name());
        FaultyBlackBox {
            inner,
            plan,
            name,
            per_worker_evals: Mutex::new(Vec::new()),
            serial: AtomicUsize::new(0),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped black box.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Whether `ctx.worker`'s scheduled death has arrived; bumps the
    /// worker's evaluation counter either way.
    fn crash_due(&self, worker: usize) -> bool {
        let Some(&Some(after)) = self.plan.crash_after.get(worker) else {
            return false;
        };
        let mut counts = self.per_worker_evals.lock().unwrap();
        if counts.len() <= worker {
            counts.resize(worker + 1, 0);
        }
        let seen = counts[worker];
        counts[worker] += 1;
        seen >= after
    }
}

impl<B: BlackBox> BlackBox for FaultyBlackBox<B> {
    fn bounds(&self) -> &Bounds {
        self.inner.bounds()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let task = self.serial.fetch_add(1, Ordering::Relaxed);
        self.evaluate_attempt(x, AttemptContext::first(task, 0))
    }

    fn evaluate_attempt(&self, x: &[f64], ctx: AttemptContext) -> Evaluation {
        if self.crash_due(ctx.worker) {
            if ctx.panics_caught {
                panic_any(WorkerDeath { worker: ctx.worker });
            }
            return Evaluation::failed("worker crashed", 0.0);
        }
        let e = self.inner.evaluate_attempt(x, ctx);
        match self.plan.decide(ctx.task, ctx.attempt) {
            InjectedFault::None => e,
            InjectedFault::Fail => Evaluation::failed("injected simulator crash", e.cost),
            InjectedFault::NaNValue => Evaluation::ok(f64::NAN, e.cost),
            InjectedFault::PosInf => Evaluation::ok(f64::INFINITY, e.cost),
            InjectedFault::NegInf => Evaluation::ok(f64::NEG_INFINITY, e.cost),
            InjectedFault::Hang => Evaluation {
                value: f64::NAN,
                cost: self.plan.hang_cost,
                outcome: EvalOutcome::Failed {
                    reason: "hung".to_string(),
                },
            },
            InjectedFault::Panic => {
                if ctx.panics_caught {
                    panic_any("injected evaluation panic");
                }
                Evaluation::failed("injected evaluation panic", e.cost)
            }
            InjectedFault::Straggle => Evaluation {
                cost: e.cost * self.plan.straggler_factor,
                ..e
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_time::SimTimeModel;
    use crate::CostedFunction;

    fn toy() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::unit_cube(1).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.2, 3);
        CostedFunction::new("toy", bounds, time, |x: &[f64]| 1.0 - x[0])
    }

    #[test]
    fn decisions_are_a_pure_function_of_seed_task_attempt() {
        let plan = FaultPlan {
            seed: 42,
            fail_rate: 0.3,
            nonfinite_rate: 0.2,
            straggler_rate: 0.2,
            ..FaultPlan::default()
        };
        for task in 0..50 {
            for attempt in 1..=3 {
                assert_eq!(
                    plan.decide(task, attempt),
                    plan.clone().decide(task, attempt)
                );
            }
        }
    }

    #[test]
    fn retries_redraw_faults() {
        let plan = FaultPlan {
            seed: 7,
            fail_rate: 0.5,
            ..FaultPlan::default()
        };
        // With a 50% rate some (task, attempt) pair must differ from
        // its attempt-1 sibling; determinism makes this a fixed fact.
        let differs = (0..40).any(|t| plan.decide(t, 1) != plan.decide(t, 2));
        assert!(differs, "attempt number must enter the fault draw");
    }

    #[test]
    fn rates_roughly_respected() {
        let plan = FaultPlan {
            seed: 3,
            fail_rate: 0.25,
            ..FaultPlan::default()
        };
        let n = 2000;
        let fails = (0..n)
            .filter(|&t| plan.decide(t, 1) == InjectedFault::Fail)
            .count();
        let frac = fails as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.05, "observed fail rate {frac}");
    }

    #[test]
    fn zero_rate_plan_is_transparent() {
        let bb = toy();
        let clean = bb.evaluate(&[0.4]);
        let faulty = FaultyBlackBox::new(toy(), FaultPlan::none(9));
        let e = faulty.evaluate_attempt(&[0.4], AttemptContext::first(0, 0));
        assert_eq!(e, clean);
    }

    #[test]
    fn injected_failure_keeps_inner_cost() {
        let plan = FaultPlan {
            seed: 1,
            fail_rate: 1.0,
            ..FaultPlan::default()
        };
        let faulty = FaultyBlackBox::new(toy(), plan);
        let clean_cost = toy().evaluate(&[0.4]).cost;
        let e = faulty.evaluate_attempt(&[0.4], AttemptContext::first(0, 0));
        assert!(e.value.is_nan());
        assert_eq!(e.cost, clean_cost);
        assert!(!e.resolved_outcome().is_ok());
    }

    #[test]
    fn straggler_scales_cost_only() {
        let plan = FaultPlan {
            seed: 1,
            straggler_rate: 1.0,
            straggler_factor: 8.0,
            ..FaultPlan::default()
        };
        let faulty = FaultyBlackBox::new(toy(), plan);
        let clean = toy().evaluate(&[0.4]);
        let e = faulty.evaluate_attempt(&[0.4], AttemptContext::first(0, 0));
        assert_eq!(e.value, clean.value);
        assert_eq!(e.cost, clean.cost * 8.0);
        assert!(e.resolved_outcome().is_ok());
    }

    #[test]
    fn crash_schedule_fails_without_panic_when_not_caught() {
        let plan = FaultPlan {
            seed: 1,
            crash_after: vec![Some(2)],
            ..FaultPlan::default()
        };
        let faulty = FaultyBlackBox::new(toy(), plan);
        for k in 0..2 {
            let e = faulty.evaluate_attempt(&[0.4], AttemptContext::first(k, 0));
            assert!(e.resolved_outcome().is_ok(), "eval {k} before the crash");
        }
        let e = faulty.evaluate_attempt(&[0.4], AttemptContext::first(2, 0));
        assert_eq!(e.resolved_outcome().describe(), "worker crashed");
    }

    #[test]
    fn crash_schedule_panics_with_worker_death_when_caught() {
        let plan = FaultPlan {
            seed: 1,
            crash_after: vec![Some(0)],
            ..FaultPlan::default()
        };
        let faulty = FaultyBlackBox::new(toy(), plan);
        let ctx = AttemptContext {
            task: 0,
            attempt: 1,
            worker: 0,
            panics_caught: true,
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            faulty.evaluate_attempt(&[0.4], ctx)
        }))
        .expect_err("scheduled death must panic");
        assert_eq!(
            err.downcast_ref::<WorkerDeath>(),
            Some(&WorkerDeath { worker: 0 })
        );
    }
}
