//! Deterministic discrete-event executors over a virtual clock.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use easybo_telemetry::{Event, Telemetry};

use crate::{BlackBox, BusyPoint, Dataset, RunTrace, Schedule};

/// Batch-selection callback for the synchronous driver: given everything
/// observed so far, propose the next batch of query points.
pub trait SyncBatchPolicy {
    /// Proposes up to `batch_size` query points. Returning fewer than
    /// `batch_size` points is allowed; returning an empty batch ends the run.
    fn select_batch(&mut self, data: &Dataset, batch_size: usize) -> Vec<Vec<f64>>;
}

/// Point-selection callback for the asynchronous driver: called whenever a
/// worker becomes idle, with the observed data *and* the points still under
/// evaluation (for penalization).
pub trait AsyncPolicy {
    /// Proposes the next query point for the idle worker.
    fn select_next(&mut self, data: &Dataset, busy: &[BusyPoint]) -> Vec<f64>;
}

/// Blanket impl so closures can serve as synchronous policies in tests.
impl<F: FnMut(&Dataset, usize) -> Vec<Vec<f64>>> SyncBatchPolicy for F {
    fn select_batch(&mut self, data: &Dataset, batch_size: usize) -> Vec<Vec<f64>> {
        self(data, batch_size)
    }
}

/// Outcome of an executor run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// All completed observations in completion order.
    pub data: Dataset,
    /// Best-so-far timeline.
    pub trace: RunTrace,
    /// Worker occupancy record.
    pub schedule: Schedule,
}

impl RunResult {
    /// Best observed value.
    pub fn best_value(&self) -> f64 {
        self.data.best_value()
    }

    /// Total virtual wall-clock of the run (seconds).
    pub fn total_time(&self) -> f64 {
        self.schedule.makespan()
    }
}

/// Discrete-event executor over a virtual clock with a fixed worker pool.
///
/// # Example
///
/// ```
/// use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor, Dataset};
/// use easybo_opt::Bounds;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::unit_cube(1)?;
/// let time = SimTimeModel::new(&bounds, 10.0, 0.3, 5);
/// let bb = CostedFunction::new("toy", bounds.clone(), time, |x: &[f64]| x[0]);
/// let exec = VirtualExecutor::new(3);
/// // A trivial "policy": always query the center.
/// let mut policy = |_data: &Dataset, b: usize| vec![vec![0.5]; b];
/// let init = vec![vec![0.1], vec![0.9]];
/// let result = exec.run_sync(&bb, &init, 8, &mut policy);
/// assert_eq!(result.data.len(), 8);
/// assert!(result.best_value() >= 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualExecutor {
    workers: usize,
}

/// Heap entry for the async driver, ordered earliest-first with worker-id
/// tie-breaking for determinism.
#[derive(Debug)]
struct FinishEvent {
    time: f64,
    worker: usize,
    task: usize,
    x: Vec<f64>,
    value: f64,
}

impl PartialEq for FinishEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for FinishEvent {}
impl PartialOrd for FinishEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FinishEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.worker.cmp(&self.worker))
            .then(other.task.cmp(&self.task))
    }
}

impl VirtualExecutor {
    /// Creates an executor with the given number of parallel workers.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        VirtualExecutor { workers }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs **synchronous batch** optimization: evaluates `init` points in
    /// barrier-synchronized rounds, then repeatedly asks the policy for a
    /// batch, evaluates it in parallel, and advances the clock by the
    /// *slowest* evaluation of each round. Results become visible to the
    /// policy only at the barrier.
    ///
    /// `max_evals` counts total evaluations including the initial design.
    pub fn run_sync(
        &self,
        bb: &dyn BlackBox,
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn SyncBatchPolicy,
    ) -> RunResult {
        self.run_sync_with(bb, init, max_evals, policy, &Telemetry::disabled())
    }

    /// [`VirtualExecutor::run_sync`] with a telemetry handle: the run
    /// clock is advanced in virtual seconds, `QueryIssued`/`EvalStarted`
    /// events fire at round start, `EvalFinished` at the barrier (the
    /// same timestamp `RunTrace` records, so a JSONL sink reconstructs
    /// the trace exactly), and `WorkerIdle` reports each member's gap to
    /// the round's slowest evaluation.
    pub fn run_sync_with(
        &self,
        bb: &dyn BlackBox,
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn SyncBatchPolicy,
        telemetry: &Telemetry,
    ) -> RunResult {
        let b = self.workers;
        let mut data = Dataset::new();
        let mut trace = RunTrace::new();
        let mut schedule = Schedule::new(b);
        let mut t = 0.0f64;
        let mut task = 0usize;
        let mut pending: VecDeque<Vec<f64>> = init.iter().take(max_evals).cloned().collect();

        while data.len() < max_evals {
            let remaining = max_evals - data.len();
            telemetry.set_now(t);
            let round: Vec<Vec<f64>> = if pending.is_empty() {
                policy.select_batch(&data, b.min(remaining))
            } else {
                let take = b.min(remaining).min(pending.len());
                pending.drain(..take).collect()
            };
            if round.is_empty() {
                break;
            }
            let evals: Vec<crate::Evaluation> = round.iter().map(|x| bb.evaluate(x)).collect();
            let round_time = evals.iter().map(|e| e.cost).fold(0.0, f64::max);
            let first_task = task;
            for (w, (x, e)) in round.iter().zip(evals.iter()).enumerate() {
                schedule.add(w % b, task, t, t + e.cost);
                telemetry.emit_at_with(t, || Event::QueryIssued {
                    task,
                    worker: w % b,
                });
                telemetry.emit_at_with(t, || Event::EvalStarted {
                    task,
                    worker: w % b,
                });
                task += 1;
                let _ = x;
            }
            t += round_time;
            telemetry.set_now(t);
            // Results are revealed at the barrier; `EvalFinished` carries
            // the barrier timestamp to match `trace.record` below.
            for (w, (x, e)) in round.into_iter().zip(evals).enumerate() {
                telemetry.emit_at_with(t, || Event::EvalFinished {
                    task: first_task + w,
                    worker: w % b,
                    value: e.value,
                });
                let gap = round_time - e.cost;
                if gap > 0.0 {
                    telemetry.emit_at_with(t, || Event::WorkerIdle { worker: w % b, gap });
                }
                data.push(x, e.value);
                trace.record(t, e.value);
            }
            // Mark the barrier in the schedule by stretching nothing — the
            // idle gap is implicit in the next round's start time.
        }
        finish_run_metrics(telemetry, &schedule);
        RunResult {
            data,
            trace,
            schedule,
        }
    }

    /// Runs **asynchronous batch** optimization: whenever any worker
    /// finishes, its result is committed and the policy immediately proposes
    /// a replacement point (seeing the current busy set for penalization).
    ///
    /// `max_evals` counts total evaluations including the initial design.
    pub fn run_async(
        &self,
        bb: &dyn BlackBox,
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
    ) -> RunResult {
        self.run_async_with(bb, init, max_evals, policy, &Telemetry::disabled())
    }

    /// [`VirtualExecutor::run_async`] with a telemetry handle: the run
    /// clock tracks the discrete-event clock, `QueryIssued`/`EvalStarted`
    /// fire when a worker picks up a point, `EvalFinished` at the
    /// completion time `RunTrace` records, and one `WorkerIdle` per
    /// worker reports its total idle seconds at the end of the run.
    pub fn run_async_with(
        &self,
        bb: &dyn BlackBox,
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
        telemetry: &Telemetry,
    ) -> RunResult {
        let b = self.workers;
        let mut data = Dataset::new();
        let mut trace = RunTrace::new();
        let mut schedule = Schedule::new(b);
        let mut pending: VecDeque<Vec<f64>> = init.iter().take(max_evals).cloned().collect();
        let mut busy: Vec<BusyPoint> = Vec::new();
        let mut heap: BinaryHeap<FinishEvent> = BinaryHeap::new();
        let mut issued = 0usize;

        let start = |worker: usize,
                     now: f64,
                     data: &Dataset,
                     busy: &mut Vec<BusyPoint>,
                     pending: &mut VecDeque<Vec<f64>>,
                     heap: &mut BinaryHeap<FinishEvent>,
                     schedule: &mut Schedule,
                     issued: &mut usize,
                     policy: &mut dyn AsyncPolicy| {
            telemetry.set_now(now);
            let x = pending
                .pop_front()
                .unwrap_or_else(|| policy.select_next(data, busy));
            let task = *issued;
            telemetry.emit_at_with(now, || Event::QueryIssued { task, worker });
            telemetry.emit_at_with(now, || Event::EvalStarted { task, worker });
            let e = bb.evaluate(&x);
            let finish = now + e.cost;
            schedule.add(worker, task, now, finish);
            busy.push(BusyPoint {
                x: x.clone(),
                task,
                worker,
                finish_time: finish,
            });
            heap.push(FinishEvent {
                time: finish,
                worker,
                task,
                x,
                value: e.value,
            });
            *issued += 1;
        };

        for w in 0..b {
            if issued >= max_evals {
                break;
            }
            start(
                w,
                0.0,
                &data,
                &mut busy,
                &mut pending,
                &mut heap,
                &mut schedule,
                &mut issued,
                policy,
            );
        }
        while let Some(ev) = heap.pop() {
            busy.retain(|bp| bp.task != ev.task);
            telemetry.set_now(ev.time);
            telemetry.emit_at_with(ev.time, || Event::EvalFinished {
                task: ev.task,
                worker: ev.worker,
                value: ev.value,
            });
            data.push(ev.x, ev.value);
            trace.record(ev.time, ev.value);
            if issued < max_evals {
                start(
                    ev.worker,
                    ev.time,
                    &data,
                    &mut busy,
                    &mut pending,
                    &mut heap,
                    &mut schedule,
                    &mut issued,
                    policy,
                );
            }
        }
        if telemetry.enabled() {
            let makespan = schedule.makespan();
            for w in 0..b {
                let busy_w: f64 = schedule
                    .worker_spans(w)
                    .iter()
                    .map(|s| s.end - s.start)
                    .sum();
                let gap = makespan - busy_w;
                if gap > 0.0 {
                    telemetry.emit_at(makespan, Event::WorkerIdle { worker: w, gap });
                }
            }
        }
        finish_run_metrics(telemetry, &schedule);
        RunResult {
            data,
            trace,
            schedule,
        }
    }

    /// Runs **sequential** optimization (one worker, one point at a time):
    /// equivalent to [`VirtualExecutor::run_async`] with a single worker.
    pub fn run_sequential(
        bb: &dyn BlackBox,
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
    ) -> RunResult {
        VirtualExecutor::new(1).run_async(bb, init, max_evals, policy)
    }
}

/// Records end-of-run scheduling gauges shared by every executor.
pub(crate) fn finish_run_metrics(telemetry: &Telemetry, schedule: &Schedule) {
    if !telemetry.enabled() {
        return;
    }
    let makespan = schedule.makespan();
    telemetry.set_now(makespan);
    telemetry.gauge_set("run_makespan_s", makespan);
    telemetry.gauge_set("run_utilization", schedule.utilization());
    telemetry.gauge_set("run_idle_s", schedule.idle_time());
    if makespan > 0.0 {
        for w in 0..schedule.workers() {
            let busy_w: f64 = schedule
                .worker_spans(w)
                .iter()
                .map(|s| s.end - s.start)
                .sum();
            telemetry.observe("worker_utilization", busy_w / makespan);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostedFunction, SimTimeModel};
    use easybo_opt::Bounds;

    fn toy_bb(spread: f64) -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::unit_cube(1).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, spread, 5);
        CostedFunction::new("toy", bounds, time, |x: &[f64]| x[0])
    }

    struct CenterPolicy;
    impl AsyncPolicy for CenterPolicy {
        fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
            vec![0.5]
        }
    }

    /// Policy that records the busy sets it is shown.
    struct SpyPolicy {
        seen_busy_sizes: Vec<usize>,
    }
    impl AsyncPolicy for SpyPolicy {
        fn select_next(&mut self, _d: &Dataset, busy: &[BusyPoint]) -> Vec<f64> {
            self.seen_busy_sizes.push(busy.len());
            vec![0.25]
        }
    }

    #[test]
    fn sync_runs_exact_eval_count() {
        let bb = toy_bb(0.3);
        let exec = VirtualExecutor::new(4);
        let mut policy = |_d: &Dataset, b: usize| vec![vec![0.5]; b];
        let init = vec![vec![0.1], vec![0.2], vec![0.3]];
        let r = exec.run_sync(&bb, &init, 11, &mut policy);
        assert_eq!(r.data.len(), 11);
        assert_eq!(r.trace.len(), 11);
        assert_eq!(r.schedule.spans().len(), 11);
    }

    #[test]
    fn sync_clock_advances_by_round_maximum() {
        let bb = toy_bb(0.3);
        let exec = VirtualExecutor::new(2);
        let mut policy =
            |_d: &Dataset, b: usize| (0..b).map(|i| vec![i as f64 / 10.0]).collect::<Vec<_>>();
        let r = exec.run_sync(&bb, &[], 4, &mut policy);
        // Two rounds; the barrier time of each round is the max of its costs.
        let times: Vec<f64> = r.trace.points().iter().map(|p| p.time).collect();
        assert_eq!(times[0], times[1], "round 1 results share a barrier");
        assert_eq!(times[2], times[3], "round 2 results share a barrier");
        assert!(times[2] > times[0]);
    }

    #[test]
    fn async_runs_exact_eval_count() {
        let bb = toy_bb(0.3);
        let exec = VirtualExecutor::new(4);
        let mut policy = CenterPolicy;
        let r = exec.run_async(&bb, &[vec![0.1]], 9, &mut policy);
        assert_eq!(r.data.len(), 9);
        assert_eq!(r.trace.len(), 9);
    }

    #[test]
    fn async_is_never_slower_than_sync_for_same_work() {
        // Same black box, same number of evals, heterogeneous costs.
        let bb = toy_bb(0.3);
        let init: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 / 5.0]).collect();
        let exec = VirtualExecutor::new(5);
        let mut sync_policy = |_d: &Dataset, b: usize| {
            (0..b)
                .map(|i| vec![(i as f64 + 0.3) / 10.0])
                .collect::<Vec<_>>()
        };
        let sync = exec.run_sync(&bb, &init, 40, &mut sync_policy);
        struct Seq(usize);
        impl AsyncPolicy for Seq {
            fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
                self.0 += 1;
                vec![((self.0 % 10) as f64 + 0.3) / 10.0]
            }
        }
        let asyn = exec.run_async(&bb, &init, 40, &mut Seq(0));
        assert!(
            asyn.total_time() <= sync.total_time() + 1e-9,
            "async {} vs sync {}",
            asyn.total_time(),
            sync.total_time()
        );
        // And utilization is at least as good.
        assert!(asyn.schedule.utilization() >= sync.schedule.utilization() - 1e-9);
    }

    #[test]
    fn async_policy_sees_busy_points() {
        let bb = toy_bb(0.3);
        let exec = VirtualExecutor::new(3);
        let mut spy = SpyPolicy {
            seen_busy_sizes: Vec::new(),
        };
        let r = exec.run_async(&bb, &[vec![0.1], vec![0.2], vec![0.3]], 9, &mut spy);
        assert_eq!(r.data.len(), 9);
        // Each selection happens while the other 2 workers are busy.
        assert!(!spy.seen_busy_sizes.is_empty());
        assert!(
            spy.seen_busy_sizes.iter().all(|&n| n == 2),
            "{:?}",
            spy.seen_busy_sizes
        );
    }

    #[test]
    fn async_with_one_worker_is_sequential() {
        let bb = toy_bb(0.3);
        let mut policy = CenterPolicy;
        let r = VirtualExecutor::run_sequential(&bb, &[vec![0.0]], 5, &mut policy);
        assert_eq!(r.data.len(), 5);
        // Sequential total time = sum of individual costs.
        let sum: f64 = r.schedule.spans().iter().map(|s| s.end - s.start).sum();
        assert!((r.total_time() - sum).abs() < 1e-9);
        assert!((r.schedule.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trace_times_are_monotone_in_async_mode() {
        let bb = toy_bb(0.3);
        let exec = VirtualExecutor::new(4);
        let r = exec.run_async(&bb, &[vec![0.9]], 20, &mut CenterPolicy);
        let times: Vec<f64> = r.trace.points().iter().map(|p| p.time).collect();
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn empty_batch_from_policy_terminates_sync() {
        let bb = toy_bb(0.0);
        let exec = VirtualExecutor::new(2);
        let mut policy = |_d: &Dataset, _b: usize| Vec::<Vec<f64>>::new();
        let r = exec.run_sync(&bb, &[vec![0.5]], 10, &mut policy);
        assert_eq!(r.data.len(), 1, "only the init point runs");
    }

    #[test]
    fn init_larger_than_budget_is_truncated() {
        let bb = toy_bb(0.0);
        let exec = VirtualExecutor::new(2);
        let init: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0]).collect();
        let r = exec.run_sync(&bb, &init, 3, &mut |_d: &Dataset, b: usize| {
            vec![vec![0.5]; b]
        });
        assert_eq!(r.data.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = VirtualExecutor::new(0);
    }

    #[test]
    fn deterministic_across_runs() {
        let bb = toy_bb(0.3);
        let exec = VirtualExecutor::new(3);
        let init = vec![vec![0.4], vec![0.6]];
        let a = exec.run_async(&bb, &init, 12, &mut CenterPolicy);
        let b = exec.run_async(&bb, &init, 12, &mut CenterPolicy);
        assert_eq!(a.data, b.data);
        assert_eq!(a.trace, b.trace);
    }
}
