//! Deterministic discrete-event executors over a virtual clock.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use easybo_opt::OptError;
use easybo_telemetry::{Event, Telemetry};

use crate::blackbox::{AttemptContext, EvalOutcome};
use crate::retry::RetryPolicy;
use crate::session::{HookAction, SessionHook, SessionState, Told};
use crate::{BlackBox, BusyPoint, Dataset, RunTrace, Schedule};

/// Batch-selection callback for the synchronous driver: given everything
/// observed so far, propose the next batch of query points.
pub trait SyncBatchPolicy {
    /// Proposes up to `batch_size` query points. Returning fewer than
    /// `batch_size` points is allowed; returning an empty batch ends the run.
    fn select_batch(&mut self, data: &Dataset, batch_size: usize) -> Vec<Vec<f64>>;
}

/// Point-selection callback for the asynchronous driver: called whenever a
/// worker becomes idle, with the observed data *and* the points still under
/// evaluation (for penalization).
pub trait AsyncPolicy {
    /// Proposes the next query point for the idle worker.
    fn select_next(&mut self, data: &Dataset, busy: &[BusyPoint]) -> Vec<f64>;

    /// Serializes the policy's mutable state (RNG stream, surrogate
    /// caches, …) as opaque bytes for checkpointing. `None` — the
    /// default — means the policy is stateless or does not support
    /// durable capture; resuming such a policy restarts it fresh.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state previously captured by
    /// [`AsyncPolicy::snapshot_state`], continuing the policy's
    /// decision stream bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns a description when the bytes are malformed or the
    /// policy does not support restore.
    fn restore_state(&mut self, _state: &[u8]) -> Result<(), String> {
        Err("this policy does not support state restore".to_string())
    }
}

/// Blanket impl so closures can serve as synchronous policies in tests.
impl<F: FnMut(&Dataset, usize) -> Vec<Vec<f64>>> SyncBatchPolicy for F {
    fn select_batch(&mut self, data: &Dataset, batch_size: usize) -> Vec<Vec<f64>> {
        self(data, batch_size)
    }
}

/// Outcome of an executor run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// All completed observations in completion order.
    pub data: Dataset,
    /// Best-so-far timeline.
    pub trace: RunTrace,
    /// Worker occupancy record.
    pub schedule: Schedule,
}

impl RunResult {
    /// Best observed value.
    pub fn best_value(&self) -> f64 {
        self.data.best_value()
    }

    /// Total virtual wall-clock of the run (seconds).
    pub fn total_time(&self) -> f64 {
        self.schedule.makespan()
    }
}

/// Discrete-event executor over a virtual clock with a fixed worker pool.
///
/// # Example
///
/// ```
/// use easybo_exec::{CostedFunction, SimTimeModel, VirtualExecutor, Dataset};
/// use easybo_opt::Bounds;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::unit_cube(1)?;
/// let time = SimTimeModel::new(&bounds, 10.0, 0.3, 5);
/// let bb = CostedFunction::new("toy", bounds.clone(), time, |x: &[f64]| x[0]);
/// let exec = VirtualExecutor::new(3);
/// // A trivial "policy": always query the center.
/// let mut policy = |_data: &Dataset, b: usize| vec![vec![0.5]; b];
/// let init = vec![vec![0.1], vec![0.9]];
/// let result = exec.run_sync(&bb, &init, 8, &mut policy);
/// assert_eq!(result.data.len(), 8);
/// assert!(result.best_value() >= 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualExecutor {
    workers: usize,
}

/// Heap entry for the async driver, ordered earliest-first with
/// worker/task/sequence tie-breaking for determinism. Under a no-retry
/// policy the sequence number never decides (each `(time, worker,
/// task)` triple is unique), so the event order is identical to the
/// pre-fault-tolerance driver.
#[derive(Debug)]
struct SimEvent {
    time: f64,
    worker: usize,
    task: usize,
    seq: usize,
    kind: SimEventKind,
}

#[derive(Debug)]
enum SimEventKind {
    /// An attempt's simulated completion (successful or not). The
    /// query point lives in the session's in-flight table, keyed by
    /// task — which is what makes the heap reconstructible from a
    /// snapshot on resume.
    Finish {
        value: f64,
        attempt: usize,
        outcome: EvalOutcome,
    },
    /// A backoff expiry: begin the next attempt of a failed task (the
    /// point and attempt number live in the session's backoff table).
    Retry,
}

impl PartialEq for SimEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for SimEvent {}
impl PartialOrd for SimEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SimEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.worker.cmp(&self.worker))
            .then(other.task.cmp(&self.task))
            .then(other.seq.cmp(&self.seq))
    }
}

/// Mutable state of one asynchronous resilient run; methods implement
/// the discrete-event transitions so the driver loop stays linear. All
/// durable bookkeeping lives in the [`SessionState`]; only the event
/// heap (reconstructible from the session) is driver-local.
struct AsyncDriver<'a> {
    bb: &'a dyn BlackBox,
    retry: &'a RetryPolicy,
    telemetry: &'a Telemetry,
    session: SessionState,
    heap: BinaryHeap<SimEvent>,
    seq: usize,
}

impl AsyncDriver<'_> {
    /// Issues a brand-new task to `worker`: next pending init point or a
    /// fresh policy proposal.
    fn start_task(&mut self, worker: usize, now: f64, policy: &mut dyn AsyncPolicy) {
        self.telemetry.set_now(now);
        let Some(s) = self.session.ask_traced(policy, self.telemetry) else {
            return;
        };
        self.begin_attempt(worker, now, s.task, s.x, s.attempt);
    }

    /// Runs one attempt of `task` on `worker`: evaluates eagerly,
    /// applies the per-attempt timeout, records the span and busy
    /// point, and schedules the finish event.
    fn begin_attempt(&mut self, worker: usize, now: f64, task: usize, x: Vec<f64>, attempt: usize) {
        self.telemetry.set_now(now);
        let _span = self.telemetry.span("dispatch");
        self.telemetry
            .emit_at_with(now, || Event::QueryIssued { task, worker });
        self.telemetry
            .emit_at_with(now, || Event::EvalStarted { task, worker });
        let e = self.bb.evaluate_attempt(
            &x,
            AttemptContext {
                task,
                attempt,
                worker,
                panics_caught: false,
            },
        );
        let mut outcome = e.resolved_outcome();
        let mut cost = e.cost;
        if let Some(deadline) = self.retry.timeout {
            if cost > deadline {
                // The job system abandons the attempt at the deadline;
                // the worker is occupied only until then.
                cost = deadline;
                outcome = EvalOutcome::TimedOut;
            }
        }
        let finish = now + cost;
        self.session
            .schedule
            .add_with(worker, task, now, finish, !outcome.is_ok());
        self.session
            .begin(task, attempt, x, worker, Some(now), finish);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(SimEvent {
            time: finish,
            worker,
            task,
            seq,
            kind: SimEventKind::Finish {
                value: e.value,
                attempt,
                outcome,
            },
        });
    }

    /// Resolves one finished attempt: commit, retry with backoff, or
    /// apply the exhaustion action.
    #[allow(clippy::too_many_arguments)]
    fn on_finish(
        &mut self,
        time: f64,
        worker: usize,
        task: usize,
        value: f64,
        attempt: usize,
        outcome: EvalOutcome,
        policy: &mut dyn AsyncPolicy,
    ) {
        let Some(inf) = self.session.take_inflight(task) else {
            return;
        };
        self.telemetry.set_now(time);
        match self.session.tell(
            self.retry,
            self.telemetry,
            time,
            worker,
            task,
            inf.x,
            value,
            attempt,
            outcome,
        ) {
            Told::Committed | Told::Dropped => self.refill(worker, time, policy),
            Told::Backoff { due } => {
                let seq = self.seq;
                self.seq += 1;
                // The worker backs off with its task: the retry runs on
                // the same worker once the delay elapses.
                self.heap.push(SimEvent {
                    time: due,
                    worker,
                    task,
                    seq,
                    kind: SimEventKind::Retry,
                });
            }
        }
    }

    /// Hands `worker` a new task if the budget allows.
    fn refill(&mut self, worker: usize, now: f64, policy: &mut dyn AsyncPolicy) {
        self.start_task(worker, now, policy);
    }
}

impl VirtualExecutor {
    /// Creates an executor with the given number of parallel workers.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        VirtualExecutor { workers }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs **synchronous batch** optimization: evaluates `init` points in
    /// barrier-synchronized rounds, then repeatedly asks the policy for a
    /// batch, evaluates it in parallel, and advances the clock by the
    /// *slowest* evaluation of each round. Results become visible to the
    /// policy only at the barrier.
    ///
    /// `max_evals` counts total evaluations including the initial design.
    pub fn run_sync(
        &self,
        bb: &dyn BlackBox,
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn SyncBatchPolicy,
    ) -> RunResult {
        self.run_sync_with(bb, init, max_evals, policy, &Telemetry::disabled())
    }

    /// [`VirtualExecutor::run_sync`] with a telemetry handle: the run
    /// clock is advanced in virtual seconds, `QueryIssued`/`EvalStarted`
    /// events fire at round start, `EvalFinished` at the barrier (the
    /// same timestamp `RunTrace` records, so a JSONL sink reconstructs
    /// the trace exactly), and `WorkerIdle` reports each member's gap to
    /// the round's slowest evaluation.
    pub fn run_sync_with(
        &self,
        bb: &dyn BlackBox,
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn SyncBatchPolicy,
        telemetry: &Telemetry,
    ) -> RunResult {
        let b = self.workers;
        let mut data = Dataset::new();
        let mut trace = RunTrace::new();
        let mut schedule = Schedule::new(b);
        let mut t = 0.0f64;
        let mut task = 0usize;
        let mut pending: VecDeque<Vec<f64>> = init.iter().take(max_evals).cloned().collect();

        while data.len() < max_evals {
            let remaining = max_evals - data.len();
            telemetry.set_now(t);
            let round: Vec<Vec<f64>> = if pending.is_empty() {
                policy.select_batch(&data, b.min(remaining))
            } else {
                let take = b.min(remaining).min(pending.len());
                pending.drain(..take).collect()
            };
            if round.is_empty() {
                break;
            }
            let evals: Vec<crate::Evaluation> = round.iter().map(|x| bb.evaluate(x)).collect();
            let round_time = evals.iter().map(|e| e.cost).fold(0.0, f64::max);
            let first_task = task;
            for (w, (x, e)) in round.iter().zip(evals.iter()).enumerate() {
                schedule.add(w % b, task, t, t + e.cost);
                telemetry.emit_at_with(t, || Event::QueryIssued {
                    task,
                    worker: w % b,
                });
                telemetry.emit_at_with(t, || Event::EvalStarted {
                    task,
                    worker: w % b,
                });
                task += 1;
                let _ = x;
            }
            t += round_time;
            telemetry.set_now(t);
            // Results are revealed at the barrier; `EvalFinished` carries
            // the barrier timestamp to match `trace.record` below.
            for (w, (x, e)) in round.into_iter().zip(evals).enumerate() {
                telemetry.emit_at_with(t, || Event::EvalFinished {
                    task: first_task + w,
                    worker: w % b,
                    value: e.value,
                });
                let gap = round_time - e.cost;
                if gap > 0.0 {
                    telemetry.emit_at_with(t, || Event::WorkerIdle { worker: w % b, gap });
                }
                data.push(x, e.value);
                trace.record(t, e.value);
            }
            // Mark the barrier in the schedule by stretching nothing — the
            // idle gap is implicit in the next round's start time.
        }
        finish_run_metrics(telemetry, &schedule);
        RunResult {
            data,
            trace,
            schedule,
        }
    }

    /// Runs **asynchronous batch** optimization: whenever any worker
    /// finishes, its result is committed and the policy immediately proposes
    /// a replacement point (seeing the current busy set for penalization).
    ///
    /// `max_evals` counts total evaluations including the initial design.
    pub fn run_async(
        &self,
        bb: &dyn BlackBox,
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
    ) -> RunResult {
        self.run_async_with(bb, init, max_evals, policy, &Telemetry::disabled())
    }

    /// [`VirtualExecutor::run_async`] with a telemetry handle: the run
    /// clock tracks the discrete-event clock, `QueryIssued`/`EvalStarted`
    /// fire when a worker picks up a point, `EvalFinished` at the
    /// completion time `RunTrace` records, and one `WorkerIdle` per
    /// worker reports its total idle seconds at the end of the run.
    pub fn run_async_with(
        &self,
        bb: &dyn BlackBox,
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
        telemetry: &Telemetry,
    ) -> RunResult {
        // `RetryPolicy::none()` reproduces the legacy driver exactly:
        // one attempt per task, no timeout, every value recorded.
        self.run_async_resilient(bb, init, max_evals, policy, &RetryPolicy::none(), telemetry)
    }

    /// [`VirtualExecutor::run_async_with`] under a [`RetryPolicy`]:
    /// attempts whose outcome is not [`EvalOutcome::Ok`] (simulator
    /// crash, non-finite FOM, timeout) are requeued on the same worker
    /// after an exponential backoff *on the virtual clock*, up to
    /// `retry.max_attempts`; exhausted tasks are then dropped, recorded
    /// raw, or recorded at a penalty per [`FailureAction`].
    ///
    /// Failed attempts emit `EvalFailed` (and `EvalRetried` when
    /// requeued); their spans carry the `failed` flag and are excluded
    /// from [`Schedule::utilization`]. Their busy points are removed
    /// during backoff so stale pseudo-points never poison the policy's
    /// penalization (§III-C). `max_evals` counts *tasks*, not attempts.
    ///
    /// Everything stays deterministic: faults, backoff, and scheduling
    /// are pure functions of the inputs, so a seeded chaos run is
    /// bit-reproducible.
    pub fn run_async_resilient(
        &self,
        bb: &dyn BlackBox,
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
        retry: &RetryPolicy,
        telemetry: &Telemetry,
    ) -> RunResult {
        let session = SessionState::new(self.workers, max_evals, init);
        match self.drive(bb, session, policy, retry, telemetry, None, false) {
            Ok(result) => result,
            // Only a session hook can abort the run, and there is none.
            Err(e) => unreachable!("hookless run cannot abort: {e}"),
        }
    }

    /// [`VirtualExecutor::run_async_resilient`] over an explicit
    /// [`SessionState`], with an optional [`SessionHook`] invoked after
    /// every completed observation (the seam checkpoint writers and
    /// chaos plans plug into).
    ///
    /// # Errors
    ///
    /// Returns [`OptError::ExecutorFailure`] when the hook aborts the
    /// run via [`HookAction::Stop`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_session_resilient(
        &self,
        bb: &dyn BlackBox,
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
        retry: &RetryPolicy,
        telemetry: &Telemetry,
        hook: Option<&mut SessionHook<'_>>,
    ) -> Result<RunResult, OptError> {
        let session = SessionState::new(self.workers, max_evals, init);
        self.drive(bb, session, policy, retry, telemetry, hook, false)
    }

    /// Continues a previously captured session to completion: every
    /// in-flight attempt is re-issued at its recorded worker/start (a
    /// pure re-evaluation, reproducing its span, busy point, and finish
    /// event bit-for-bit), pending backoffs are turned back into retry
    /// events, and the run proceeds as if never interrupted.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::ExecutorFailure`] when the session was
    /// captured under a different worker count, or when the hook aborts
    /// the run via [`HookAction::Stop`].
    pub fn resume_session_resilient(
        &self,
        bb: &dyn BlackBox,
        session: SessionState,
        policy: &mut dyn AsyncPolicy,
        retry: &RetryPolicy,
        telemetry: &Telemetry,
        hook: Option<&mut SessionHook<'_>>,
    ) -> Result<RunResult, OptError> {
        self.drive(bb, session, policy, retry, telemetry, hook, true)
    }

    /// The discrete-event loop shared by fresh and resumed runs.
    #[allow(clippy::too_many_arguments)]
    fn drive(
        &self,
        bb: &dyn BlackBox,
        session: SessionState,
        policy: &mut dyn AsyncPolicy,
        retry: &RetryPolicy,
        telemetry: &Telemetry,
        mut hook: Option<&mut SessionHook<'_>>,
        resume: bool,
    ) -> Result<RunResult, OptError> {
        let b = self.workers;
        if session.workers() != b {
            return Err(OptError::ExecutorFailure {
                reason: format!(
                    "session captured with {} workers cannot run on {b}",
                    session.workers()
                ),
            });
        }
        let mut d = AsyncDriver {
            bb,
            retry,
            telemetry,
            session,
            heap: BinaryHeap::new(),
            seq: 0,
        };

        if resume {
            // Re-issue every interrupted attempt at its recorded
            // worker/start: re-evaluation is pure, so the span, busy
            // point, and finish event all come back bit-identical.
            // Attempts never started (threaded captures) restart at the
            // capture clock on a deterministic worker.
            let inflight = std::mem::take(&mut d.session.inflight);
            let clock = d.session.clock();
            for inf in inflight {
                let (worker, start) = inf.started.unwrap_or((inf.task % b, clock));
                d.begin_attempt(worker, start, inf.task, inf.x, inf.attempt);
            }
            // Pending backoffs become retry events again; the records
            // stay in the session (the event loop consumes them).
            let waiting: Vec<(f64, usize, usize)> = d
                .session
                .backoffs()
                .iter()
                .map(|r| (r.due, r.worker, r.task))
                .collect();
            for (due, worker, task) in waiting {
                let seq = d.seq;
                d.seq += 1;
                d.heap.push(SimEvent {
                    time: due,
                    worker,
                    task,
                    seq,
                    kind: SimEventKind::Retry,
                });
            }
        } else {
            for w in 0..b {
                if d.session.issued() >= d.session.max_evals() {
                    break;
                }
                d.start_task(w, 0.0, policy);
            }
        }
        let mut last_completed = d.session.completed();
        while let Some(ev) = d.heap.pop() {
            d.session.clock = ev.time;
            match ev.kind {
                SimEventKind::Finish {
                    value,
                    attempt,
                    outcome,
                } => d.on_finish(ev.time, ev.worker, ev.task, value, attempt, outcome, policy),
                SimEventKind::Retry => {
                    if let Some(r) = d.session.take_backoff(ev.task) {
                        d.telemetry.set_now(ev.time);
                        let _span = d.telemetry.span("retry_backoff");
                        d.begin_attempt(ev.worker, ev.time, ev.task, r.x, r.attempt);
                    }
                }
            }
            if d.session.completed() > last_completed {
                last_completed = d.session.completed();
                if let Some(h) = hook.as_mut() {
                    if let HookAction::Stop { reason } = (**h)(&d.session, &*policy, ev.time) {
                        return Err(OptError::ExecutorFailure { reason });
                    }
                }
            }
        }
        let session = d.session;
        if telemetry.enabled() {
            let makespan = session.schedule().makespan();
            for w in 0..b {
                let busy_w: f64 = session
                    .schedule()
                    .worker_spans(w)
                    .iter()
                    .map(|s| s.end - s.start)
                    .sum();
                let gap = makespan - busy_w;
                if gap > 0.0 {
                    telemetry.emit_at(makespan, Event::WorkerIdle { worker: w, gap });
                }
            }
        }
        finish_run_metrics(telemetry, session.schedule());
        Ok(session.into_result())
    }

    /// Runs **sequential** optimization (one worker, one point at a time):
    /// equivalent to [`VirtualExecutor::run_async`] with a single worker.
    pub fn run_sequential(
        bb: &dyn BlackBox,
        init: &[Vec<f64>],
        max_evals: usize,
        policy: &mut dyn AsyncPolicy,
    ) -> RunResult {
        VirtualExecutor::new(1).run_async(bb, init, max_evals, policy)
    }
}

/// Records end-of-run scheduling gauges shared by every executor.
pub(crate) fn finish_run_metrics(telemetry: &Telemetry, schedule: &Schedule) {
    if !telemetry.enabled() {
        return;
    }
    let makespan = schedule.makespan();
    telemetry.set_now(makespan);
    telemetry.gauge_set("run_makespan_s", makespan);
    telemetry.gauge_set("run_utilization", schedule.utilization());
    telemetry.gauge_set("run_idle_s", schedule.idle_time());
    if makespan > 0.0 {
        for w in 0..schedule.workers() {
            let busy_w: f64 = schedule
                .worker_spans(w)
                .iter()
                .map(|s| s.end - s.start)
                .sum();
            telemetry.observe("worker_utilization", busy_w / makespan);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::FailureAction;
    use crate::{CostedFunction, SimTimeModel};
    use easybo_opt::Bounds;

    fn toy_bb(spread: f64) -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
        let bounds = Bounds::unit_cube(1).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, spread, 5);
        CostedFunction::new("toy", bounds, time, |x: &[f64]| x[0])
    }

    struct CenterPolicy;
    impl AsyncPolicy for CenterPolicy {
        fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
            vec![0.5]
        }
    }

    /// Policy that records the busy sets it is shown.
    struct SpyPolicy {
        seen_busy_sizes: Vec<usize>,
    }
    impl AsyncPolicy for SpyPolicy {
        fn select_next(&mut self, _d: &Dataset, busy: &[BusyPoint]) -> Vec<f64> {
            self.seen_busy_sizes.push(busy.len());
            vec![0.25]
        }
    }

    #[test]
    fn sync_runs_exact_eval_count() {
        let bb = toy_bb(0.3);
        let exec = VirtualExecutor::new(4);
        let mut policy = |_d: &Dataset, b: usize| vec![vec![0.5]; b];
        let init = vec![vec![0.1], vec![0.2], vec![0.3]];
        let r = exec.run_sync(&bb, &init, 11, &mut policy);
        assert_eq!(r.data.len(), 11);
        assert_eq!(r.trace.len(), 11);
        assert_eq!(r.schedule.spans().len(), 11);
    }

    #[test]
    fn sync_clock_advances_by_round_maximum() {
        let bb = toy_bb(0.3);
        let exec = VirtualExecutor::new(2);
        let mut policy =
            |_d: &Dataset, b: usize| (0..b).map(|i| vec![i as f64 / 10.0]).collect::<Vec<_>>();
        let r = exec.run_sync(&bb, &[], 4, &mut policy);
        // Two rounds; the barrier time of each round is the max of its costs.
        let times: Vec<f64> = r.trace.points().iter().map(|p| p.time).collect();
        assert_eq!(times[0], times[1], "round 1 results share a barrier");
        assert_eq!(times[2], times[3], "round 2 results share a barrier");
        assert!(times[2] > times[0]);
    }

    #[test]
    fn async_runs_exact_eval_count() {
        let bb = toy_bb(0.3);
        let exec = VirtualExecutor::new(4);
        let mut policy = CenterPolicy;
        let r = exec.run_async(&bb, &[vec![0.1]], 9, &mut policy);
        assert_eq!(r.data.len(), 9);
        assert_eq!(r.trace.len(), 9);
    }

    #[test]
    fn async_is_never_slower_than_sync_for_same_work() {
        // Same black box, same number of evals, heterogeneous costs.
        let bb = toy_bb(0.3);
        let init: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 / 5.0]).collect();
        let exec = VirtualExecutor::new(5);
        let mut sync_policy = |_d: &Dataset, b: usize| {
            (0..b)
                .map(|i| vec![(i as f64 + 0.3) / 10.0])
                .collect::<Vec<_>>()
        };
        let sync = exec.run_sync(&bb, &init, 40, &mut sync_policy);
        struct Seq(usize);
        impl AsyncPolicy for Seq {
            fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
                self.0 += 1;
                vec![((self.0 % 10) as f64 + 0.3) / 10.0]
            }
        }
        let asyn = exec.run_async(&bb, &init, 40, &mut Seq(0));
        assert!(
            asyn.total_time() <= sync.total_time() + 1e-9,
            "async {} vs sync {}",
            asyn.total_time(),
            sync.total_time()
        );
        // And utilization is at least as good.
        assert!(asyn.schedule.utilization() >= sync.schedule.utilization() - 1e-9);
    }

    #[test]
    fn async_policy_sees_busy_points() {
        let bb = toy_bb(0.3);
        let exec = VirtualExecutor::new(3);
        let mut spy = SpyPolicy {
            seen_busy_sizes: Vec::new(),
        };
        let r = exec.run_async(&bb, &[vec![0.1], vec![0.2], vec![0.3]], 9, &mut spy);
        assert_eq!(r.data.len(), 9);
        // Each selection happens while the other 2 workers are busy.
        assert!(!spy.seen_busy_sizes.is_empty());
        assert!(
            spy.seen_busy_sizes.iter().all(|&n| n == 2),
            "{:?}",
            spy.seen_busy_sizes
        );
    }

    #[test]
    fn async_with_one_worker_is_sequential() {
        let bb = toy_bb(0.3);
        let mut policy = CenterPolicy;
        let r = VirtualExecutor::run_sequential(&bb, &[vec![0.0]], 5, &mut policy);
        assert_eq!(r.data.len(), 5);
        // Sequential total time = sum of individual costs.
        let sum: f64 = r.schedule.spans().iter().map(|s| s.end - s.start).sum();
        assert!((r.total_time() - sum).abs() < 1e-9);
        assert!((r.schedule.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trace_times_are_monotone_in_async_mode() {
        let bb = toy_bb(0.3);
        let exec = VirtualExecutor::new(4);
        let r = exec.run_async(&bb, &[vec![0.9]], 20, &mut CenterPolicy);
        let times: Vec<f64> = r.trace.points().iter().map(|p| p.time).collect();
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn empty_batch_from_policy_terminates_sync() {
        let bb = toy_bb(0.0);
        let exec = VirtualExecutor::new(2);
        let mut policy = |_d: &Dataset, _b: usize| Vec::<Vec<f64>>::new();
        let r = exec.run_sync(&bb, &[vec![0.5]], 10, &mut policy);
        assert_eq!(r.data.len(), 1, "only the init point runs");
    }

    #[test]
    fn init_larger_than_budget_is_truncated() {
        let bb = toy_bb(0.0);
        let exec = VirtualExecutor::new(2);
        let init: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0]).collect();
        let r = exec.run_sync(&bb, &init, 3, &mut |_d: &Dataset, b: usize| {
            vec![vec![0.5]; b]
        });
        assert_eq!(r.data.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = VirtualExecutor::new(0);
    }

    #[test]
    fn deterministic_across_runs() {
        let bb = toy_bb(0.3);
        let exec = VirtualExecutor::new(3);
        let init = vec![vec![0.4], vec![0.6]];
        let a = exec.run_async(&bb, &init, 12, &mut CenterPolicy);
        let b = exec.run_async(&bb, &init, 12, &mut CenterPolicy);
        assert_eq!(a.data, b.data);
        assert_eq!(a.trace, b.trace);
    }

    /// Fails the first `fail_first` attempts of every task, succeeding
    /// afterwards; attempts are visible through `evaluate_attempt`.
    struct FlakyBb {
        inner: CostedFunction<fn(&[f64]) -> f64>,
        fail_first: usize,
    }
    impl BlackBox for FlakyBb {
        fn bounds(&self) -> &Bounds {
            self.inner.bounds()
        }
        fn evaluate(&self, x: &[f64]) -> crate::Evaluation {
            self.inner.evaluate(x)
        }
        fn evaluate_attempt(&self, x: &[f64], ctx: AttemptContext) -> crate::Evaluation {
            if ctx.attempt <= self.fail_first {
                crate::Evaluation::failed("flaky", self.inner.evaluate(x).cost)
            } else {
                self.inner.evaluate(x)
            }
        }
    }

    fn flaky_bb(fail_first: usize) -> FlakyBb {
        fn obj(x: &[f64]) -> f64 {
            x[0]
        }
        let bounds = Bounds::unit_cube(1).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.3, 5);
        FlakyBb {
            inner: CostedFunction::new("flaky", bounds, time, obj as fn(&[f64]) -> f64),
            fail_first,
        }
    }

    #[test]
    fn retries_recover_every_task() {
        let bb = flaky_bb(1); // first attempt always fails
        let retry = RetryPolicy::default().max_attempts(3).backoff(5.0, 2.0);
        let r = VirtualExecutor::new(2).run_async_resilient(
            &bb,
            &[vec![0.1]],
            6,
            &mut CenterPolicy,
            &retry,
            &Telemetry::disabled(),
        );
        // Every task fails once then succeeds on attempt 2.
        assert_eq!(r.data.len(), 6);
        assert!(r.data.ys().iter().all(|y| y.is_finite()));
        // Each task leaves one failed and one successful span.
        let failed = r.schedule.spans().iter().filter(|s| s.failed).count();
        assert_eq!(failed, 6);
        assert_eq!(r.schedule.spans().len(), 12);
        // Backoff advances the virtual clock: the retry of a task
        // starts exactly `delay` after its failed span ends.
        let spans = r.schedule.spans();
        let first_fail = spans.iter().find(|s| s.failed).unwrap();
        let retry_span = spans
            .iter()
            .find(|s| s.task == first_fail.task && !s.failed)
            .unwrap();
        assert!((retry_span.start - (first_fail.end + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn exhausted_tasks_are_dropped_or_penalized() {
        let bb = flaky_bb(usize::MAX); // never succeeds
        let drop_policy = RetryPolicy::default().max_attempts(2).backoff(1.0, 2.0);
        let r = VirtualExecutor::new(2).run_async_resilient(
            &bb,
            &[vec![0.1]],
            4,
            &mut CenterPolicy,
            &drop_policy,
            &Telemetry::disabled(),
        );
        assert!(r.data.is_empty(), "dropped tasks leave no observations");
        assert_eq!(r.trace.len(), 0);

        let pen = drop_policy
            .clone()
            .on_exhausted(FailureAction::Penalty(-99.0));
        let r = VirtualExecutor::new(2).run_async_resilient(
            &bb,
            &[vec![0.1]],
            4,
            &mut CenterPolicy,
            &pen,
            &Telemetry::disabled(),
        );
        assert_eq!(r.data.len(), 4);
        assert!(r.data.ys().iter().all(|&y| y == -99.0));
    }

    #[test]
    fn timeout_bounds_hung_attempts() {
        // A black box whose every evaluation "hangs" for 1e9 seconds.
        struct Hang(Bounds);
        impl BlackBox for Hang {
            fn bounds(&self) -> &Bounds {
                &self.0
            }
            fn evaluate(&self, _x: &[f64]) -> crate::Evaluation {
                crate::Evaluation::ok(1.0, 1e9)
            }
        }
        let bb = Hang(Bounds::unit_cube(1).unwrap());
        let retry = RetryPolicy::default()
            .max_attempts(2)
            .backoff(10.0, 2.0)
            .timeout(100.0);
        let r = VirtualExecutor::new(1).run_async_resilient(
            &bb,
            &[vec![0.5]],
            2,
            &mut CenterPolicy,
            &retry,
            &Telemetry::disabled(),
        );
        // 2 tasks × 2 attempts × 100s timeout + backoffs: nowhere near 1e9.
        assert!(r.total_time() < 1000.0, "makespan {}", r.total_time());
        assert!(r.data.is_empty());
        assert!(r.schedule.spans().iter().all(|s| s.failed));
        assert!(r
            .schedule
            .spans()
            .iter()
            .all(|s| (s.end - s.start - 100.0).abs() < 1e-12));
    }

    #[test]
    fn none_policy_is_bit_identical_to_legacy_entry_point() {
        let bb = toy_bb(0.3);
        let exec = VirtualExecutor::new(3);
        let init = vec![vec![0.4], vec![0.6]];
        let legacy = exec.run_async(&bb, &init, 12, &mut CenterPolicy);
        let resilient = exec.run_async_resilient(
            &bb,
            &init,
            12,
            &mut CenterPolicy,
            &RetryPolicy::none(),
            &Telemetry::disabled(),
        );
        assert_eq!(legacy.data, resilient.data);
        assert_eq!(legacy.trace, resilient.trace);
        assert_eq!(legacy.schedule, resilient.schedule);
    }
}
