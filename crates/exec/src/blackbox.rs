use easybo_opt::Bounds;

use crate::sim_time::SimTimeModel;

/// How one black-box evaluation attempt ended.
///
/// Real simulator jobs do not just succeed: they crash, refuse to
/// converge (returning NaN/Inf figures of merit), and hang. Making the
/// outcome explicit lets the executors retry, drop, or penalize failed
/// attempts instead of silently feeding garbage to the surrogate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalOutcome {
    /// The simulation completed and produced a usable value.
    Ok,
    /// The simulation failed outright (crash, non-convergence, license
    /// loss, ...). `reason` is a short label; keep it free of `"` and
    /// `\` so the telemetry JSONL encoding round-trips.
    Failed {
        /// Short failure label.
        reason: String,
    },
    /// The simulation "completed" but the figure of merit is NaN/±Inf.
    NonFinite,
    /// The evaluation exceeded its deadline and was abandoned.
    TimedOut,
}

impl EvalOutcome {
    /// Whether this outcome is a usable observation.
    pub fn is_ok(&self) -> bool {
        matches!(self, EvalOutcome::Ok)
    }

    /// Short human-readable label for events and reports.
    pub fn describe(&self) -> String {
        match self {
            EvalOutcome::Ok => "ok".to_string(),
            EvalOutcome::Failed { reason } => reason.clone(),
            EvalOutcome::NonFinite => "non-finite".to_string(),
            EvalOutcome::TimedOut => "timeout".to_string(),
        }
    }
}

/// The outcome of one black-box evaluation: the observed objective value,
/// the (virtual) seconds of simulator time it consumed, and how the
/// attempt ended.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Observed objective value (maximization). Meaningless unless the
    /// resolved outcome is [`EvalOutcome::Ok`].
    pub value: f64,
    /// Simulation cost in seconds.
    pub cost: f64,
    /// How the attempt ended.
    pub outcome: EvalOutcome,
}

impl Evaluation {
    /// A successful evaluation.
    pub fn ok(value: f64, cost: f64) -> Self {
        Evaluation {
            value,
            cost,
            outcome: EvalOutcome::Ok,
        }
    }

    /// A failed evaluation; the value is recorded as NaN.
    pub fn failed(reason: impl Into<String>, cost: f64) -> Self {
        Evaluation {
            value: f64::NAN,
            cost,
            outcome: EvalOutcome::Failed {
                reason: reason.into(),
            },
        }
    }

    /// The outcome with the non-finite check folded in: an evaluation
    /// claiming [`EvalOutcome::Ok`] but carrying a NaN/±Inf value
    /// resolves to [`EvalOutcome::NonFinite`]. Black boxes that never
    /// think about failure (every pre-existing one) thus still get
    /// their non-convergent values classified correctly.
    pub fn resolved_outcome(&self) -> EvalOutcome {
        match &self.outcome {
            EvalOutcome::Ok if !self.value.is_finite() => EvalOutcome::NonFinite,
            other => other.clone(),
        }
    }
}

/// Context handed to [`BlackBox::evaluate_attempt`]: which task/attempt
/// this call serves and on which worker it runs. Fault-injection
/// wrappers key their deterministic fault draws on `(task, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptContext {
    /// Executor-wide task id (issue order).
    pub task: usize,
    /// 1-based attempt number for this task.
    pub attempt: usize,
    /// Worker running the attempt.
    pub worker: usize,
    /// Whether the calling executor catches panics from this call. When
    /// `false` (the virtual executor), wrappers that would panic to
    /// simulate a worker death must return a failed evaluation instead.
    pub panics_caught: bool,
}

impl AttemptContext {
    /// First attempt of `task` on `worker`, panics not caught.
    pub fn first(task: usize, worker: usize) -> Self {
        AttemptContext {
            task,
            attempt: 1,
            worker,
            panics_caught: false,
        }
    }
}

/// An expensive black-box objective: the only interface the optimizers see,
/// mirroring how the paper's algorithms see HSPICE.
pub trait BlackBox: Send + Sync {
    /// The design space.
    fn bounds(&self) -> &Bounds;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "black-box"
    }

    /// Evaluates the objective at `x`, reporting value and simulation cost.
    fn evaluate(&self, x: &[f64]) -> Evaluation;

    /// Evaluates one attempt of a task with scheduling context. The
    /// default ignores the context, so plain objectives need only
    /// implement [`BlackBox::evaluate`]; fault-injection wrappers
    /// override this to key faults on `(task, attempt)`.
    fn evaluate_attempt(&self, x: &[f64], _ctx: AttemptContext) -> Evaluation {
        self.evaluate(x)
    }
}

/// Adapts a plain `Fn(&[f64]) -> f64` objective plus a [`SimTimeModel`]
/// into a [`BlackBox`].
///
/// # Example
///
/// ```
/// use easybo_exec::{BlackBox, CostedFunction, SimTimeModel};
/// use easybo_opt::Bounds;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::unit_cube(2)?;
/// let time = SimTimeModel::new(&bounds, 40.0, 0.17, 7);
/// let bb = CostedFunction::new("sphere", bounds, time, |x: &[f64]| {
///     -(x[0] * x[0] + x[1] * x[1])
/// });
/// let e = bb.evaluate(&[0.3, 0.4]);
/// assert_eq!(e.value, -0.25);
/// assert!(e.cost > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct CostedFunction<F> {
    name: String,
    bounds: Bounds,
    time: SimTimeModel,
    f: F,
}

impl<F: Fn(&[f64]) -> f64 + Send + Sync> CostedFunction<F> {
    /// Wraps `f` with the given bounds and cost model.
    pub fn new(name: impl Into<String>, bounds: Bounds, time: SimTimeModel, f: F) -> Self {
        CostedFunction {
            name: name.into(),
            bounds,
            time,
            f,
        }
    }

    /// The cost model in use.
    pub fn time_model(&self) -> &SimTimeModel {
        &self.time
    }
}

impl<F: Fn(&[f64]) -> f64 + Send + Sync> BlackBox for CostedFunction<F> {
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        Evaluation::ok((self.f)(x), self.time.cost(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costed_function_reports_name_and_bounds() {
        let bounds = Bounds::unit_cube(1).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.1, 1);
        let bb = CostedFunction::new("toy", bounds.clone(), time, |x: &[f64]| x[0]);
        assert_eq!(bb.name(), "toy");
        assert_eq!(bb.bounds(), &bounds);
        let e = bb.evaluate(&[0.5]);
        assert_eq!(e.value, 0.5);
        assert!(e.cost > 5.0 && e.cost < 15.0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let bounds = Bounds::unit_cube(3).unwrap();
        let time = SimTimeModel::new(&bounds, 30.0, 0.2, 9);
        let bb = CostedFunction::new("det", bounds, time, |x: &[f64]| x.iter().sum());
        let a = bb.evaluate(&[0.1, 0.2, 0.3]);
        let b = bb.evaluate(&[0.1, 0.2, 0.3]);
        assert_eq!(a, b);
    }

    #[test]
    fn ok_outcome_with_non_finite_value_resolves_to_non_finite() {
        let e = Evaluation::ok(f64::NAN, 1.0);
        assert_eq!(e.outcome, EvalOutcome::Ok);
        assert_eq!(e.resolved_outcome(), EvalOutcome::NonFinite);
        let e = Evaluation::ok(f64::INFINITY, 1.0);
        assert_eq!(e.resolved_outcome(), EvalOutcome::NonFinite);
        let e = Evaluation::ok(2.0, 1.0);
        assert_eq!(e.resolved_outcome(), EvalOutcome::Ok);
    }

    #[test]
    fn failed_constructor_carries_reason_and_nan_value() {
        let e = Evaluation::failed("no convergence", 3.0);
        assert!(e.value.is_nan());
        assert_eq!(e.cost, 3.0);
        assert!(!e.resolved_outcome().is_ok());
        assert_eq!(e.resolved_outcome().describe(), "no convergence");
    }

    #[test]
    fn default_evaluate_attempt_delegates_to_evaluate() {
        let bounds = Bounds::unit_cube(1).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.1, 1);
        let bb = CostedFunction::new("toy", bounds, time, |x: &[f64]| x[0]);
        let a = bb.evaluate(&[0.5]);
        let b = bb.evaluate_attempt(&[0.5], AttemptContext::first(7, 2));
        assert_eq!(a, b);
    }

    #[test]
    fn blackbox_is_object_safe() {
        let bounds = Bounds::unit_cube(1).unwrap();
        let time = SimTimeModel::new(&bounds, 1.0, 0.0, 0);
        let bb = CostedFunction::new("obj", bounds, time, |x: &[f64]| x[0]);
        let dyn_bb: &dyn BlackBox = &bb;
        assert_eq!(dyn_bb.evaluate(&[1.0]).value, 1.0);
    }
}
