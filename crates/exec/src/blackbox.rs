use easybo_opt::Bounds;

use crate::sim_time::SimTimeModel;

/// The outcome of one black-box evaluation: the observed objective value and
/// the (virtual) seconds of simulator time it consumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Observed objective value (maximization).
    pub value: f64,
    /// Simulation cost in seconds.
    pub cost: f64,
}

/// An expensive black-box objective: the only interface the optimizers see,
/// mirroring how the paper's algorithms see HSPICE.
pub trait BlackBox: Send + Sync {
    /// The design space.
    fn bounds(&self) -> &Bounds;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "black-box"
    }

    /// Evaluates the objective at `x`, reporting value and simulation cost.
    fn evaluate(&self, x: &[f64]) -> Evaluation;
}

/// Adapts a plain `Fn(&[f64]) -> f64` objective plus a [`SimTimeModel`]
/// into a [`BlackBox`].
///
/// # Example
///
/// ```
/// use easybo_exec::{BlackBox, CostedFunction, SimTimeModel};
/// use easybo_opt::Bounds;
///
/// # fn main() -> Result<(), easybo_opt::OptError> {
/// let bounds = Bounds::unit_cube(2)?;
/// let time = SimTimeModel::new(&bounds, 40.0, 0.17, 7);
/// let bb = CostedFunction::new("sphere", bounds, time, |x: &[f64]| {
///     -(x[0] * x[0] + x[1] * x[1])
/// });
/// let e = bb.evaluate(&[0.3, 0.4]);
/// assert_eq!(e.value, -0.25);
/// assert!(e.cost > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct CostedFunction<F> {
    name: String,
    bounds: Bounds,
    time: SimTimeModel,
    f: F,
}

impl<F: Fn(&[f64]) -> f64 + Send + Sync> CostedFunction<F> {
    /// Wraps `f` with the given bounds and cost model.
    pub fn new(name: impl Into<String>, bounds: Bounds, time: SimTimeModel, f: F) -> Self {
        CostedFunction {
            name: name.into(),
            bounds,
            time,
            f,
        }
    }

    /// The cost model in use.
    pub fn time_model(&self) -> &SimTimeModel {
        &self.time
    }
}

impl<F: Fn(&[f64]) -> f64 + Send + Sync> BlackBox for CostedFunction<F> {
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        Evaluation {
            value: (self.f)(x),
            cost: self.time.cost(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costed_function_reports_name_and_bounds() {
        let bounds = Bounds::unit_cube(1).unwrap();
        let time = SimTimeModel::new(&bounds, 10.0, 0.1, 1);
        let bb = CostedFunction::new("toy", bounds.clone(), time, |x: &[f64]| x[0]);
        assert_eq!(bb.name(), "toy");
        assert_eq!(bb.bounds(), &bounds);
        let e = bb.evaluate(&[0.5]);
        assert_eq!(e.value, 0.5);
        assert!(e.cost > 5.0 && e.cost < 15.0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let bounds = Bounds::unit_cube(3).unwrap();
        let time = SimTimeModel::new(&bounds, 30.0, 0.2, 9);
        let bb = CostedFunction::new("det", bounds, time, |x: &[f64]| x.iter().sum());
        let a = bb.evaluate(&[0.1, 0.2, 0.3]);
        let b = bb.evaluate(&[0.1, 0.2, 0.3]);
        assert_eq!(a, b);
    }

    #[test]
    fn blackbox_is_object_safe() {
        let bounds = Bounds::unit_cube(1).unwrap();
        let time = SimTimeModel::new(&bounds, 1.0, 0.0, 0);
        let bb = CostedFunction::new("obj", bounds, time, |x: &[f64]| x[0]);
        let dyn_bb: &dyn BlackBox = &bb;
        assert_eq!(dyn_bb.evaluate(&[1.0]).value, 1.0);
    }
}
