//! Low-dropout regulator (8 design variables, 180nm process) — a second
//! *extension* benchmark: LDO sizing trades load regulation, dropout,
//! quiescent current and transient response, with a stability constraint
//! that makes it a natural test case for the constrained-EasyBO extension.
//!
//! Topology: PMOS pass device driven by a single-stage error amplifier,
//! resistive feedback divider, output capacitor with ESR zero.
//!
//! First-order model:
//!
//! * dropout `V_do = I_load · R_on(pass)`;
//! * loop gain `A_loop = A_ea · gm_p·R_out · β`;
//! * load regulation `≈ 1 / (gm_p·R_out·A_ea·β)`;
//! * poles at the output (`1/R_out·C_out`) and the pass gate
//!   (`1/R_ea·C_gate`), ESR zero `1/(R_esr·C_out)` — phase margin from the
//!   two-pole-one-zero constellation;
//! * quiescent current = amplifier tail + divider current.

use easybo_opt::Bounds;

use crate::corner::Corner;
use crate::mosfet::{MosType, Mosfet};
use crate::{Circuit, CornerCircuit, Performances};

/// Load current the regulator is evaluated at (A).
pub const I_LOAD: f64 = 50e-3;
/// Regulated output voltage (V).
pub const V_OUT: f64 = 1.2;

/// Design-variable indices for [`Ldo`].
///
/// | idx | variable | meaning | range |
/// |-----|----------|---------|-------|
/// | 0 | `w_pass` | pass PMOS width (m) | 500µ – 10000µ |
/// | 1 | `l_pass` | pass PMOS length (m) | 0.18µ – 0.5µ |
/// | 2 | `w_ea` | error-amp input width (m) | 2µ – 50µ |
/// | 3 | `l_ea` | error-amp length (m) | 0.2µ – 2µ |
/// | 4 | `i_ea` | error-amp tail current (A) | 2µ – 100µ |
/// | 5 | `c_out` | output capacitor (F) | 0.1µ – 10µ (off-chip) |
/// | 6 | `r_esr` | output-cap ESR (Ω) | 1m – 1 |
/// | 7 | `r_div` | divider total resistance (Ω) | 10k – 1M |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LdoVar {
    /// Pass device width.
    WPass = 0,
    /// Pass device length.
    LPass = 1,
    /// Error-amp input width.
    WEa = 2,
    /// Error-amp length.
    LEa = 3,
    /// Error-amp tail current.
    IEa = 4,
    /// Output capacitor.
    COut = 5,
    /// Output-cap ESR.
    REsr = 6,
    /// Feedback divider resistance.
    RDiv = 7,
}

/// The LDO extension benchmark (8 design variables).
///
/// # Example
///
/// ```
/// use easybo_circuits::{Circuit, ldo::Ldo};
///
/// let ldo = Ldo::new();
/// assert_eq!(ldo.dim(), 8);
/// let a = ldo.analyze(&ldo.bounds().center());
/// assert!(a.dropout_v > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ldo {
    bounds: Bounds,
}

impl Ldo {
    /// Creates the benchmark with the standard design-variable bounds.
    pub fn new() -> Self {
        let bounds = Bounds::new(vec![
            (500e-6, 10000e-6), // w_pass
            (0.18e-6, 0.5e-6),  // l_pass
            (2e-6, 50e-6),      // w_ea
            (0.2e-6, 2e-6),     // l_ea
            (2e-6, 100e-6),     // i_ea
            (0.1e-6, 10e-6),    // c_out
            (1e-3, 1.0),        // r_esr
            (10e3, 1e6),        // r_div
        ])
        .expect("static LDO bounds are valid");
        Ldo { bounds }
    }

    /// Detailed analysis at the rated load, nominal corner. Bitwise
    /// identical to `analyze_at(x, &Corner::nominal())`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 8`.
    pub fn analyze(&self, x: &[f64]) -> LdoAnalysis {
        self.analyze_at(x, &Corner::nominal())
    }

    /// Detailed analysis at an explicit PVT [`Corner`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 8`.
    pub fn analyze_at(&self, x: &[f64], corner: &Corner) -> LdoAnalysis {
        assert_eq!(x.len(), 8, "LDO expects 8 design variables");
        let x = self.bounds.clamp(x);
        let (w_pass, l_pass, w_ea, l_ea) = (x[0], x[1], x[2], x[3]);
        let (i_ea, c_out, r_esr, r_div) = (x[4], x[5], x[6], x[7]);

        let pass = Mosfet::with_process(MosType::Pmos, w_pass, l_pass, corner.pmos);
        let ea = Mosfet::with_process(MosType::Nmos, w_ea, l_ea, corner.nmos);

        // Pass device in triode at dropout: Ron = 1/(K' W/L Vov_max).
        let vov_max = corner.vdd - pass.vth();
        let r_on = 1.0 / (pass.params().kp * pass.aspect() * vov_max);
        let dropout = I_LOAD * r_on;

        // Small-signal at the rated operating point.
        let gm_pass = pass.gm_eff(I_LOAD);
        let r_out = parallel3(pass.ro(I_LOAD), V_OUT / I_LOAD, r_div);
        let gm_ea = ea.gm_eff(i_ea / 2.0);
        let r_ea = ea.ro(i_ea / 2.0);
        let a_ea = gm_ea * r_ea;
        let beta = 0.5; // divider ratio for V_OUT from the 0.6V reference
        let loop_gain = a_ea * gm_pass * r_out * beta;

        // Load regulation (mV per full load step).
        let load_reg_mv = 1e3 * V_OUT / loop_gain.max(1.0);

        // Stability: output pole, gate pole, ESR zero.
        let f_out = 1.0 / (2.0 * std::f64::consts::PI * r_out * c_out);
        let c_gate = pass.cgs() + pass.cgd();
        let f_gate = 1.0 / (2.0 * std::f64::consts::PI * r_ea * c_gate);
        let f_zero = 1.0 / (2.0 * std::f64::consts::PI * r_esr * c_out);
        // Unity-gain crossover of the loop (dominant pole at the output).
        let f_ugf = (loop_gain * f_out).min(1e9);
        let deg = |r: f64| r.atan().to_degrees();
        let pm = (90.0 - deg(f_ugf / f_gate) + deg(f_ugf / f_zero) - deg(f_ugf / (20.0 * f_zero)))
            .clamp(0.0, 95.0);

        // Quiescent current: amplifier + divider.
        let i_q = i_ea + V_OUT / r_div;

        // Transient droop for a full load step: the output sags by
        // ΔV ≈ I_load·t_loop/C_out during the loop's reaction time, which
        // is set by the (C_out-independent) gate pole.
        let t_loop = 1.0 / (2.0 * std::f64::consts::PI * f_gate.max(1e3));
        let droop_mv = 1e3 * I_LOAD * t_loop / c_out;

        LdoAnalysis {
            dropout_v: dropout,
            load_reg_mv,
            pm_deg: pm,
            i_q_a: i_q,
            droop_mv,
            loop_gain_db: 20.0 * loop_gain.max(1e-3).log10(),
        }
    }
}

impl Default for Ldo {
    fn default() -> Self {
        Ldo::new()
    }
}

/// Three-way parallel resistance.
fn parallel3(a: f64, b: f64, c: f64) -> f64 {
    1.0 / (1.0 / a + 1.0 / b + 1.0 / c)
}

/// Analysis output of [`Ldo::analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LdoAnalysis {
    /// Dropout voltage at rated load (V).
    pub dropout_v: f64,
    /// Load regulation (mV per full load step).
    pub load_reg_mv: f64,
    /// Loop phase margin (degrees).
    pub pm_deg: f64,
    /// Quiescent current (A).
    pub i_q_a: f64,
    /// Transient droop (mV).
    pub droop_mv: f64,
    /// DC loop gain (dB).
    pub loop_gain_db: f64,
}

impl Circuit for Ldo {
    fn name(&self) -> &str {
        "ldo"
    }

    fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    fn performances(&self, x: &[f64]) -> Performances {
        let a = self.analyze(x);
        Performances::new()
            .with("dropout_v", a.dropout_v)
            .with("load_reg_mv", a.load_reg_mv)
            .with("pm_deg", a.pm_deg)
            .with("i_q_a", a.i_q_a)
            .with("droop_mv", a.droop_mv)
    }

    /// FOM: minimize dropout, regulation error, droop and quiescent
    /// current, with a smooth stability credit for PM ≥ 45°.
    fn fom(&self, x: &[f64]) -> f64 {
        let a = self.analyze(x);
        let stability = 1.0 / (1.0 + (-(a.pm_deg - 45.0) / 6.0).exp());
        let quality =
            -20.0 * a.dropout_v - 0.5 * a.load_reg_mv - 0.05 * a.droop_mv - 50.0 * (a.i_q_a * 1e3);
        10.0 * stability + quality
    }
}

impl CornerCircuit for Ldo {
    fn performances_at(&self, x: &[f64], corner: &Corner) -> Performances {
        let a = self.analyze_at(x, corner);
        Performances::new()
            .with("dropout_v", a.dropout_v)
            .with("load_reg_mv", a.load_reg_mv)
            .with("pm_deg", a.pm_deg)
            .with("i_q_a", a.i_q_a)
            .with("droop_mv", a.droop_mv)
    }

    fn fom_at(&self, x: &[f64], corner: &Corner) -> f64 {
        let a = self.analyze_at(x, corner);
        let stability = 1.0 / (1.0 + (-(a.pm_deg - 45.0) / 6.0).exp());
        let quality =
            -20.0 * a.dropout_v - 0.5 * a.load_reg_mv - 0.05 * a.droop_mv - 50.0 * (a.i_q_a * 1e3);
        10.0 * stability + quality
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ldo() -> Ldo {
        Ldo::new()
    }

    fn nominal() -> Vec<f64> {
        vec![4000e-6, 0.18e-6, 20e-6, 0.5e-6, 30e-6, 4e-6, 0.2, 100e3]
    }

    #[test]
    fn nominal_design_regulates() {
        let a = ldo().analyze(&nominal());
        assert!(a.dropout_v < 0.3, "dropout {}", a.dropout_v);
        assert!(a.load_reg_mv < 50.0, "regulation {}", a.load_reg_mv);
        assert!(a.loop_gain_db > 20.0, "loop gain {}", a.loop_gain_db);
        assert!(a.i_q_a < 200e-6);
    }

    #[test]
    fn wider_pass_device_lowers_dropout() {
        let l = ldo();
        let mut narrow = nominal();
        let mut wide = nominal();
        narrow[LdoVar::WPass as usize] = 800e-6;
        wide[LdoVar::WPass as usize] = 9000e-6;
        assert!(l.analyze(&wide).dropout_v < l.analyze(&narrow).dropout_v);
    }

    #[test]
    fn bigger_output_cap_reduces_droop() {
        let l = ldo();
        let mut small = nominal();
        let mut big = nominal();
        small[LdoVar::COut as usize] = 0.2e-6;
        big[LdoVar::COut as usize] = 8e-6;
        assert!(l.analyze(&big).droop_mv < l.analyze(&small).droop_mv);
    }

    #[test]
    fn divider_resistance_trades_iq() {
        let l = ldo();
        let mut lo = nominal();
        let mut hi = nominal();
        lo[LdoVar::RDiv as usize] = 20e3;
        hi[LdoVar::RDiv as usize] = 800e3;
        assert!(l.analyze(&hi).i_q_a < l.analyze(&lo).i_q_a);
    }

    #[test]
    fn esr_zero_helps_phase_margin() {
        let l = ldo();
        let mut no_esr = nominal();
        let mut esr = nominal();
        no_esr[LdoVar::REsr as usize] = 1e-3;
        esr[LdoVar::REsr as usize] = 0.3;
        assert!(
            l.analyze(&esr).pm_deg >= l.analyze(&no_esr).pm_deg,
            "{} vs {}",
            l.analyze(&esr).pm_deg,
            l.analyze(&no_esr).pm_deg
        );
    }

    #[test]
    fn fom_finite_on_pseudo_grid() {
        let l = ldo();
        let b = l.bounds().clone();
        for i in 0..150 {
            let u: Vec<f64> = (0..8)
                .map(|d| (((i * 43 + d * 61) % 83) as f64) / 82.0)
                .collect();
            assert!(l.fom(&b.from_unit(&u)).is_finite());
        }
    }

    #[test]
    fn circuit_trait_surface() {
        let l = ldo();
        assert_eq!(l.name(), "ldo");
        assert_eq!(l.dim(), 8);
        assert_eq!(l.performances(&nominal()).len(), 5);
    }

    #[test]
    fn nominal_corner_is_bitwise_analyze() {
        let l = ldo();
        let x = nominal();
        assert_eq!(l.analyze(&x), l.analyze_at(&x, &Corner::nominal()));
        assert_eq!(l.fom(&x), l.fom_at(&x, &Corner::nominal()));
        assert_eq!(
            l.performances(&x),
            l.performances_at(&x, &Corner::nominal())
        );
    }

    #[test]
    fn slow_corner_raises_dropout() {
        // Lower kp and higher |vth| at lower supply → larger Ron.
        let l = ldo();
        let x = nominal();
        let tt = l.analyze_at(&x, &Corner::nominal());
        let ss = l.analyze_at(&x, &Corner::ss());
        assert!(
            ss.dropout_v > tt.dropout_v,
            "{} vs {}",
            ss.dropout_v,
            tt.dropout_v
        );
    }
}
