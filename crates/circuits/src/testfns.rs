//! Synthetic benchmark functions with known optima, wrapped as [`Circuit`]s
//! so the whole BO stack can be validated against ground truth.
//!
//! All functions are presented as **maximization** problems (negated where
//! the literature defines a minimum), matching the paper's Eq. (1).

use easybo_opt::Bounds;

use crate::{Circuit, Performances};

/// The synthetic functions available.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestFunction {
    /// Branin (2-d): three global optima, max value ≈ -0.397887 (negated).
    Branin,
    /// Hartmann 6-d: max value ≈ 3.32237.
    Hartmann6,
    /// Ackley (d-dimensional): max value 0 at the origin (negated).
    Ackley(usize),
    /// Rosenbrock (d-dimensional): max value 0 at (1, …, 1) (negated).
    Rosenbrock(usize),
    /// Levy (d-dimensional): max value 0 at (1, …, 1) (negated).
    Levy(usize),
}

/// A synthetic objective implementing [`Circuit`].
///
/// # Example
///
/// ```
/// use easybo_circuits::{Circuit, testfns::{SyntheticCircuit, TestFunction}};
///
/// let branin = SyntheticCircuit::new(TestFunction::Branin);
/// // Known optimizer (π, 2.275) attains the global maximum ≈ -0.3979.
/// let val = branin.fom(&[std::f64::consts::PI, 2.275]);
/// assert!((val + 0.397887).abs() < 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticCircuit {
    function: TestFunction,
    bounds: Bounds,
    name: &'static str,
}

impl SyntheticCircuit {
    /// Creates the named synthetic benchmark with its standard domain.
    pub fn new(function: TestFunction) -> Self {
        let (bounds, name) = match function {
            TestFunction::Branin => (Bounds::new(vec![(-5.0, 10.0), (0.0, 15.0)]), "branin"),
            TestFunction::Hartmann6 => (Bounds::new(vec![(0.0, 1.0); 6]), "hartmann6"),
            TestFunction::Ackley(d) => (Bounds::new(vec![(-32.768, 32.768); d.max(1)]), "ackley"),
            TestFunction::Rosenbrock(d) => {
                (Bounds::new(vec![(-2.048, 2.048); d.max(1)]), "rosenbrock")
            }
            TestFunction::Levy(d) => (Bounds::new(vec![(-10.0, 10.0); d.max(1)]), "levy"),
        };
        SyntheticCircuit {
            function,
            bounds: bounds.expect("static test-function bounds are valid"),
            name,
        }
    }

    /// Which function this instance wraps.
    pub fn function(&self) -> TestFunction {
        self.function
    }

    /// The known global maximum value (to compare optimizer output against).
    pub fn global_max(&self) -> f64 {
        match self.function {
            TestFunction::Branin => -0.397887,
            TestFunction::Hartmann6 => 3.32237,
            TestFunction::Ackley(_) | TestFunction::Rosenbrock(_) | TestFunction::Levy(_) => 0.0,
        }
    }
}

impl Circuit for SyntheticCircuit {
    fn name(&self) -> &str {
        self.name
    }

    fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    fn performances(&self, x: &[f64]) -> Performances {
        Performances::new().with("value", self.fom(x))
    }

    fn fom(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.bounds.dim(), "dimension mismatch");
        match self.function {
            TestFunction::Branin => -branin(x[0], x[1]),
            TestFunction::Hartmann6 => hartmann6(x),
            TestFunction::Ackley(_) => -ackley(x),
            TestFunction::Rosenbrock(_) => -rosenbrock(x),
            TestFunction::Levy(_) => -levy(x),
        }
    }
}

/// Branin function (minimization form).
fn branin(x1: f64, x2: f64) -> f64 {
    use std::f64::consts::PI;
    let a = 1.0;
    let b = 5.1 / (4.0 * PI * PI);
    let c = 5.0 / PI;
    let r = 6.0;
    let s = 10.0;
    let t = 1.0 / (8.0 * PI);
    a * (x2 - b * x1 * x1 + c * x1 - r).powi(2) + s * (1.0 - t) * x1.cos() + s
}

/// Hartmann-6 function (maximization form — already positive at optimum).
fn hartmann6(x: &[f64]) -> f64 {
    const ALPHA: [f64; 4] = [1.0, 1.2, 3.0, 3.2];
    const A: [[f64; 6]; 4] = [
        [10.0, 3.0, 17.0, 3.5, 1.7, 8.0],
        [0.05, 10.0, 17.0, 0.1, 8.0, 14.0],
        [3.0, 3.5, 1.7, 10.0, 17.0, 8.0],
        [17.0, 8.0, 0.05, 10.0, 0.1, 14.0],
    ];
    const P: [[f64; 6]; 4] = [
        [0.1312, 0.1696, 0.5569, 0.0124, 0.8283, 0.5886],
        [0.2329, 0.4135, 0.8307, 0.3736, 0.1004, 0.9991],
        [0.2348, 0.1451, 0.3522, 0.2883, 0.3047, 0.6650],
        [0.4047, 0.8828, 0.8732, 0.5743, 0.1091, 0.0381],
    ];
    let mut sum = 0.0;
    for i in 0..4 {
        let mut inner = 0.0;
        for j in 0..6 {
            inner += A[i][j] * (x[j] - P[i][j]).powi(2);
        }
        sum += ALPHA[i] * (-inner).exp();
    }
    sum
}

/// Ackley function (minimization form).
fn ackley(x: &[f64]) -> f64 {
    use std::f64::consts::{E, PI};
    let d = x.len() as f64;
    let sum_sq: f64 = x.iter().map(|v| v * v).sum();
    let sum_cos: f64 = x.iter().map(|v| (2.0 * PI * v).cos()).sum();
    -20.0 * (-0.2 * (sum_sq / d).sqrt()).exp() - (sum_cos / d).exp() + 20.0 + E
}

/// Rosenbrock function (minimization form).
fn rosenbrock(x: &[f64]) -> f64 {
    x.windows(2)
        .map(|w| 100.0 * (w[1] - w[0] * w[0]).powi(2) + (1.0 - w[0]).powi(2))
        .sum()
}

/// Levy function (minimization form).
fn levy(x: &[f64]) -> f64 {
    use std::f64::consts::PI;
    let w: Vec<f64> = x.iter().map(|v| 1.0 + (v - 1.0) / 4.0).collect();
    let n = w.len();
    let mut sum = (PI * w[0]).sin().powi(2);
    for wi in w.iter().take(n - 1) {
        sum += (wi - 1.0).powi(2) * (1.0 + 10.0 * (PI * wi + 1.0).sin().powi(2));
    }
    sum + (w[n - 1] - 1.0).powi(2) * (1.0 + (2.0 * PI * w[n - 1]).sin().powi(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branin_known_optima() {
        let f = SyntheticCircuit::new(TestFunction::Branin);
        for opt in [
            [-std::f64::consts::PI, 12.275],
            [std::f64::consts::PI, 2.275],
            [9.42478, 2.475],
        ] {
            assert!((f.fom(&opt) - f.global_max()).abs() < 1e-3, "{opt:?}");
        }
    }

    #[test]
    fn hartmann6_known_optimum() {
        let f = SyntheticCircuit::new(TestFunction::Hartmann6);
        let xopt = [0.20169, 0.150011, 0.476874, 0.275332, 0.311652, 0.6573];
        assert!((f.fom(&xopt) - 3.32237).abs() < 1e-3);
    }

    #[test]
    fn ackley_optimum_at_origin() {
        let f = SyntheticCircuit::new(TestFunction::Ackley(4));
        assert!(f.fom(&[0.0; 4]).abs() < 1e-9);
        assert!(f.fom(&[5.0, -3.0, 2.0, 1.0]) < -5.0);
    }

    #[test]
    fn rosenbrock_optimum_at_ones() {
        let f = SyntheticCircuit::new(TestFunction::Rosenbrock(3));
        assert_eq!(f.fom(&[1.0; 3]), 0.0);
        assert!(f.fom(&[0.0; 3]) < -1.0);
    }

    #[test]
    fn levy_optimum_at_ones() {
        let f = SyntheticCircuit::new(TestFunction::Levy(5));
        assert!(f.fom(&[1.0; 5]).abs() < 1e-12);
        assert!(f.fom(&[4.0; 5]) < -1.0);
    }

    #[test]
    fn domains_match_literature() {
        assert_eq!(
            SyntheticCircuit::new(TestFunction::Branin).bounds().pair(0),
            (-5.0, 10.0)
        );
        assert_eq!(SyntheticCircuit::new(TestFunction::Hartmann6).dim(), 6);
        assert_eq!(SyntheticCircuit::new(TestFunction::Ackley(7)).dim(), 7);
    }

    #[test]
    fn all_values_below_global_max() {
        // Sample a pseudo-grid; nothing may exceed the known maximum.
        for func in [
            TestFunction::Branin,
            TestFunction::Hartmann6,
            TestFunction::Ackley(3),
            TestFunction::Rosenbrock(2),
            TestFunction::Levy(3),
        ] {
            let f = SyntheticCircuit::new(func);
            let b = f.bounds().clone();
            for i in 0..100 {
                let u: Vec<f64> = (0..b.dim())
                    .map(|d| (((i * 31 + d * 7) % 53) as f64) / 52.0)
                    .collect();
                let v = f.fom(&b.from_unit(&u));
                assert!(
                    v <= f.global_max() + 1e-9,
                    "{func:?} exceeded global max: {v}"
                );
            }
        }
    }

    #[test]
    fn performances_exposes_value() {
        let f = SyntheticCircuit::new(TestFunction::Branin);
        let p = f.performances(&[0.0, 0.0]);
        assert_eq!(p.get("value"), Some(f.fom(&[0.0, 0.0])));
    }
}
