//! Matched-pair two-stage op-amp (14 raw design variables).
//!
//! The UW-ASIC style sizing workload: the differential pair M1/M2 and the
//! mirror load M3/M4 are laid out as *independent* devices — each half has
//! its own width and length — and matching is expressed as a *parameter
//! constraint* (`w1b = w1a`, `l1b = l1a`, …) rather than baked into the
//! netlist. Off the matched manifold the input offset grows with the
//! relative geometry mismatch and the figure of merit is penalized; on the
//! manifold the circuit is *exactly* the 10-variable
//! [`TwoStageOpAmp`](crate::opamp::TwoStageOpAmp).
//!
//! This is the shape the scenario layer's expression links exploit: the
//! optimizer searches the 10-dimensional reduced space, the full
//! 14-dimensional vector is reconstructed deterministically, and the
//! mismatch penalty is identically zero along the way.

use easybo_opt::Bounds;

use crate::corner::Corner;
use crate::opamp::{OpAmpAnalysis, TwoStageOpAmp};
use crate::{Circuit, CornerCircuit, Performances};

/// FOM penalty weight per unit of relative geometry mismatch.
const MISMATCH_WEIGHT: f64 = 200.0;

/// Design-variable indices for [`MatchedOpAmp`].
///
/// | idx | variable | meaning |
/// |-----|----------|---------|
/// | 0 | `w1a` | diff-pair half A width (m) |
/// | 1 | `l1a` | diff-pair half A length (m) |
/// | 2 | `w1b` | diff-pair half B width (m) |
/// | 3 | `l1b` | diff-pair half B length (m) |
/// | 4 | `w3a` | mirror half A width (m) |
/// | 5 | `l3a` | mirror half A length (m) |
/// | 6 | `w3b` | mirror half B width (m) |
/// | 7 | `l3b` | mirror half B length (m) |
/// | 8 | `w6` | 2nd-stage width (m) |
/// | 9 | `l6` | 2nd-stage length (m) |
/// | 10 | `ib` | bias reference (A) |
/// | 11 | `mb` | tail mirror ratio |
/// | 12 | `cc` | Miller cap (F) |
/// | 13 | `rz` | nulling resistor (Ω) |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchedVar {
    /// Diff-pair half A width.
    W1a = 0,
    /// Diff-pair half A length.
    L1a = 1,
    /// Diff-pair half B width.
    W1b = 2,
    /// Diff-pair half B length.
    L1b = 3,
    /// Mirror half A width.
    W3a = 4,
    /// Mirror half A length.
    L3a = 5,
    /// Mirror half B width.
    W3b = 6,
    /// Mirror half B length.
    L3b = 7,
    /// Second-stage width.
    W6 = 8,
    /// Second-stage length.
    L6 = 9,
    /// Bias reference current.
    Ib = 10,
    /// Tail mirror ratio.
    Mb = 11,
    /// Miller compensation capacitor.
    Cc = 12,
    /// Nulling resistor.
    Rz = 13,
}

/// The matched-pair op-amp workload (14 design variables, two of the
/// device pairs unrolled).
///
/// # Example
///
/// ```
/// use easybo_circuits::{Circuit, matched::MatchedOpAmp};
///
/// let amp = MatchedOpAmp::new();
/// assert_eq!(amp.dim(), 14);
/// assert!(amp.fom(&amp.bounds().center()).is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct MatchedOpAmp {
    bounds: Bounds,
    inner: TwoStageOpAmp,
}

impl MatchedOpAmp {
    /// Creates the benchmark; pair halves share the 10-variable op-amp's
    /// per-device ranges.
    pub fn new() -> Self {
        let bounds = Bounds::new(vec![
            (5e-6, 100e-6),   // w1a
            (0.18e-6, 1e-6),  // l1a
            (5e-6, 100e-6),   // w1b
            (0.18e-6, 1e-6),  // l1b
            (2e-6, 60e-6),    // w3a
            (0.18e-6, 1e-6),  // l3a
            (2e-6, 60e-6),    // w3b
            (0.18e-6, 1e-6),  // l3b
            (10e-6, 200e-6),  // w6
            (0.18e-6, 1e-6),  // l6
            (5e-6, 50e-6),    // ib
            (1.0, 8.0),       // mb
            (0.2e-12, 3e-12), // cc
            (300.0, 10e3),    // rz
        ])
        .expect("static matched op-amp bounds are valid");
        MatchedOpAmp {
            bounds,
            inner: TwoStageOpAmp::new(),
        }
    }

    /// Folds the 14-variable vector onto the inner 10-variable op-amp:
    /// pair halves average into one effective device. For bitwise-equal
    /// halves `(a + a) / 2 == a` exactly, so designs on the matched
    /// manifold reproduce [`TwoStageOpAmp`] bit-for-bit.
    pub fn fold(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), 14, "matched op-amp expects 14 design variables");
        let x = self.bounds.clamp(x);
        vec![
            (x[0] + x[2]) / 2.0, // w1
            (x[1] + x[3]) / 2.0, // l1
            (x[4] + x[6]) / 2.0, // w3
            (x[5] + x[7]) / 2.0, // l3
            x[8],                // w6
            x[9],                // l6
            x[10],               // ib
            x[11],               // mb
            x[12],               // cc
            x[13],               // rz
        ]
    }

    /// Total relative geometry mismatch across the two matched pairs —
    /// exactly `0.0` on the matched manifold.
    pub fn mismatch(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), 14, "matched op-amp expects 14 design variables");
        let x = self.bounds.clamp(x);
        let rel = |a: f64, b: f64| (a - b).abs() / ((a + b) / 2.0);
        rel(x[0], x[2]) + rel(x[1], x[3]) + rel(x[4], x[6]) + rel(x[5], x[7])
    }

    /// Analysis of the folded effective amplifier at a corner.
    pub fn analyze_at(&self, x: &[f64], corner: &Corner) -> OpAmpAnalysis {
        self.inner.analyze_at(&self.fold(x), corner)
    }
}

impl Default for MatchedOpAmp {
    fn default() -> Self {
        MatchedOpAmp::new()
    }
}

impl Circuit for MatchedOpAmp {
    fn name(&self) -> &str {
        "matched-opamp"
    }

    fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    fn performances(&self, x: &[f64]) -> Performances {
        self.performances_at(x, &Corner::nominal())
    }

    /// The 10-variable op-amp FOM of the folded design, minus a mismatch
    /// penalty that vanishes on the matched manifold.
    fn fom(&self, x: &[f64]) -> f64 {
        self.fom_at(x, &Corner::nominal())
    }
}

impl CornerCircuit for MatchedOpAmp {
    fn performances_at(&self, x: &[f64], corner: &Corner) -> Performances {
        let a = self.analyze_at(x, corner);
        Performances::new()
            .with("gain_db", a.gain_db)
            .with("ugf_hz", a.ugf_hz)
            .with("pm_deg", a.pm_deg)
            .with("headroom_violation", a.headroom_violation)
            .with("mismatch", self.mismatch(x))
    }

    fn fom_at(&self, x: &[f64], corner: &Corner) -> f64 {
        self.inner.fom_at(&self.fold(x), corner) - MISMATCH_WEIGHT * self.mismatch(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 10-variable good design, unrolled onto the matched manifold.
    fn matched_design() -> Vec<f64> {
        vec![
            30e-6, 0.5e-6, // w1a, l1a
            30e-6, 0.5e-6, // w1b, l1b
            20e-6, 0.5e-6, // w3a, l3a
            20e-6, 0.5e-6, // w3b, l3b
            80e-6, 0.3e-6, // w6, l6
            30e-6, 4.0, // ib, mb
            1.5e-12, 3e3, // cc, rz
        ]
    }

    #[test]
    fn matched_manifold_reproduces_inner_opamp_bitwise() {
        let m = MatchedOpAmp::new();
        let inner = TwoStageOpAmp::new();
        let x14 = matched_design();
        let x10 = m.fold(&x14);
        assert_eq!(m.mismatch(&x14), 0.0);
        assert_eq!(m.fom(&x14), inner.fom(&x10));
        assert_eq!(
            m.analyze_at(&x14, &Corner::ss()),
            inner.analyze_at(&x10, &Corner::ss())
        );
    }

    #[test]
    fn mismatch_is_penalized() {
        let m = MatchedOpAmp::new();
        let matched = matched_design();
        let mut skewed = matched_design();
        skewed[MatchedVar::W1b as usize] = 40e-6;
        assert!(m.mismatch(&skewed) > 0.0);
        assert!(m.fom(&skewed) < m.fom(&matched));
    }

    #[test]
    fn fom_finite_on_pseudo_grid() {
        let m = MatchedOpAmp::new();
        let b = m.bounds().clone();
        for i in 0..150 {
            let u: Vec<f64> = (0..14)
                .map(|d| (((i * 53 + d * 71) % 89) as f64) / 88.0)
                .collect();
            assert!(m.fom(&b.from_unit(&u)).is_finite());
        }
    }

    #[test]
    fn circuit_trait_surface() {
        let m = MatchedOpAmp::new();
        assert_eq!(m.name(), "matched-opamp");
        assert_eq!(m.dim(), 14);
        let p = m.performances(&matched_design());
        assert_eq!(p.len(), 5);
        assert_eq!(p.get("mismatch"), Some(0.0));
    }
}
