//! Square-law (SPICE level-1 style) MOSFET device model for a generic
//! 180nm CMOS process.
//!
//! This is deliberately a *first-order* model: the analog sizing literature
//! (including the references the paper builds on) uses exactly these
//! equations for hand analysis, and they produce the smooth but non-convex
//! performance landscapes the BO benchmark needs. All quantities are SI.

use serde::{Deserialize, Serialize};

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosType {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Process corner constants for one device polarity of the 180nm process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessParams {
    /// Transconductance parameter `K' = µ·Cox` (A/V²).
    pub kp: f64,
    /// Threshold voltage magnitude (V).
    pub vth: f64,
    /// Channel-length-modulation coefficient at L = 1µm (1/V); scales as
    /// `λ(L) = lambda_l / L[µm]`.
    pub lambda_l: f64,
    /// Gate-oxide capacitance per area (F/m²).
    pub cox: f64,
    /// Gate-drain overlap capacitance per width (F/m).
    pub cgdo: f64,
    /// Junction (drain/source) capacitance per width (F/m).
    pub cj_w: f64,
}

/// The default 180nm-like process.
///
/// Values are textbook-typical for a 0.18µm CMOS node (supply 1.8 V).
pub const PROCESS_180NM_NMOS: ProcessParams = ProcessParams {
    kp: 300e-6,
    vth: 0.45,
    lambda_l: 0.08,
    cox: 8.5e-3,
    cgdo: 3.5e-10,
    cj_w: 8.0e-10,
};

/// PMOS counterpart of [`PROCESS_180NM_NMOS`].
pub const PROCESS_180NM_PMOS: ProcessParams = ProcessParams {
    kp: 80e-6,
    vth: 0.50,
    lambda_l: 0.10,
    cox: 8.5e-3,
    cgdo: 3.5e-10,
    cj_w: 8.0e-10,
};

/// Nominal supply voltage of the process (V).
pub const VDD_180NM: f64 = 1.8;

/// A sized MOSFET: polarity + W/L geometry against a process.
///
/// # Example
///
/// ```
/// use easybo_circuits::mosfet::{Mosfet, MosType};
///
/// // 10µm / 0.18µm NMOS carrying 100µA.
/// let m = Mosfet::new(MosType::Nmos, 10e-6, 0.18e-6);
/// let gm = m.gm(100e-6);
/// assert!(gm > 0.0);
/// // gm = sqrt(2 K' (W/L) Id)
/// let expect = (2.0 * 300e-6 * (10.0 / 0.18) * 100e-6_f64).sqrt();
/// assert!((gm - expect).abs() / expect < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mosfet {
    mos_type: MosType,
    /// Gate width (m).
    w: f64,
    /// Gate length (m).
    l: f64,
    params: ProcessParams,
}

impl Mosfet {
    /// Creates a device in the default 180nm process.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is not strictly positive.
    pub fn new(mos_type: MosType, w: f64, l: f64) -> Self {
        assert!(w > 0.0 && l > 0.0, "W and L must be positive, got {w}, {l}");
        let params = match mos_type {
            MosType::Nmos => PROCESS_180NM_NMOS,
            MosType::Pmos => PROCESS_180NM_PMOS,
        };
        Mosfet {
            mos_type,
            w,
            l,
            params,
        }
    }

    /// Creates a device against custom process parameters.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is not strictly positive.
    pub fn with_process(mos_type: MosType, w: f64, l: f64, params: ProcessParams) -> Self {
        assert!(w > 0.0 && l > 0.0, "W and L must be positive, got {w}, {l}");
        Mosfet {
            mos_type,
            w,
            l,
            params,
        }
    }

    /// Device polarity.
    pub fn mos_type(&self) -> MosType {
        self.mos_type
    }

    /// Gate width (m).
    pub fn w(&self) -> f64 {
        self.w
    }

    /// Gate length (m).
    pub fn l(&self) -> f64 {
        self.l
    }

    /// Aspect ratio W/L.
    pub fn aspect(&self) -> f64 {
        self.w / self.l
    }

    /// Process constants this device uses.
    pub fn params(&self) -> &ProcessParams {
        &self.params
    }

    /// Threshold voltage magnitude (V).
    pub fn vth(&self) -> f64 {
        self.params.vth
    }

    /// Saturation drain current for gate overdrive `vov = |Vgs| - |Vth|` (A).
    /// Returns 0 for non-positive overdrive (cut-off; sub-threshold ignored).
    pub fn id_sat(&self, vov: f64) -> f64 {
        if vov <= 0.0 {
            return 0.0;
        }
        0.5 * self.params.kp * self.aspect() * vov * vov
    }

    /// Gate overdrive required to carry `id` in saturation (V).
    ///
    /// `Vov = sqrt(2 Id / (K' W/L))`; returns 0 for non-positive `id`.
    pub fn vov_for_id(&self, id: f64) -> f64 {
        if id <= 0.0 {
            return 0.0;
        }
        (2.0 * id / (self.params.kp * self.aspect())).sqrt()
    }

    /// Transconductance at drain current `id` (S): `gm = sqrt(2 K' W/L Id)`.
    pub fn gm(&self, id: f64) -> f64 {
        if id <= 0.0 {
            return 0.0;
        }
        (2.0 * self.params.kp * self.aspect() * id).sqrt()
    }

    /// Overdrive below which the square law over-predicts gm (moderate
    /// inversion sets in); used by [`Mosfet::gm_eff`].
    pub const VOV_MODERATE: f64 = 0.08;

    /// Effective transconductance with a moderate-inversion cap:
    /// `gm = 2·Id / sqrt(Vov² + VOV_MODERATE²)`.
    ///
    /// The pure square law predicts `gm/Id = 2/Vov → ∞` as the bias current
    /// shrinks, which lets optimizers manufacture unbounded gain at nano-amp
    /// currents. Real devices saturate around the subthreshold slope; this
    /// smooth floor reproduces that cap while matching the square law for
    /// `Vov ≫ 80mV`.
    pub fn gm_eff(&self, id: f64) -> f64 {
        if id <= 0.0 {
            return 0.0;
        }
        let vov = self.vov_for_id(id);
        2.0 * id / (vov * vov + Self::VOV_MODERATE * Self::VOV_MODERATE).sqrt()
    }

    /// Channel-length modulation coefficient λ (1/V) for this gate length.
    pub fn lambda(&self) -> f64 {
        self.params.lambda_l / (self.l * 1e6)
    }

    /// Small-signal output resistance at drain current `id` (Ω):
    /// `ro = 1 / (λ Id)`. Returns `f64::INFINITY` for non-positive `id`.
    pub fn ro(&self, id: f64) -> f64 {
        if id <= 0.0 {
            return f64::INFINITY;
        }
        1.0 / (self.lambda() * id)
    }

    /// Intrinsic gain `gm·ro` at drain current `id`.
    pub fn intrinsic_gain(&self, id: f64) -> f64 {
        self.gm(id) * self.ro(id)
    }

    /// Gate-source capacitance (F): `Cgs = (2/3)·W·L·Cox + W·Cgdo`.
    pub fn cgs(&self) -> f64 {
        (2.0 / 3.0) * self.w * self.l * self.params.cox + self.w * self.params.cgdo
    }

    /// Gate-drain (overlap) capacitance (F).
    pub fn cgd(&self) -> f64 {
        self.w * self.params.cgdo
    }

    /// Drain junction capacitance (F).
    pub fn cdb(&self) -> f64 {
        self.w * self.params.cj_w
    }

    /// Saturation drain-source voltage `Vds,sat = Vov` for drain current
    /// `id` — the headroom this device consumes in a stacked branch.
    pub fn vdsat(&self, id: f64) -> f64 {
        self.vov_for_id(id)
    }
}

/// Parallel resistance `a ∥ b`, tolerant of infinite inputs.
pub fn parallel(a: f64, b: f64) -> f64 {
    if a.is_infinite() {
        return b;
    }
    if b.is_infinite() {
        return a;
    }
    a * b / (a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn nmos() -> Mosfet {
        Mosfet::new(MosType::Nmos, 20e-6, 0.5e-6)
    }

    #[test]
    fn square_law_id_vov_round_trip() {
        let m = nmos();
        let vov = 0.2;
        let id = m.id_sat(vov);
        assert!((m.vov_for_id(id) - vov).abs() < 1e-12);
    }

    #[test]
    fn gm_consistent_with_id_derivative() {
        // gm = dId/dVov numerically.
        let m = nmos();
        let vov = 0.25;
        let id = m.id_sat(vov);
        let eps = 1e-7;
        let fd = (m.id_sat(vov + eps) - m.id_sat(vov - eps)) / (2.0 * eps);
        assert!((m.gm(id) - fd).abs() / fd < 1e-6);
    }

    #[test]
    fn cutoff_region() {
        let m = nmos();
        assert_eq!(m.id_sat(0.0), 0.0);
        assert_eq!(m.id_sat(-0.3), 0.0);
        assert_eq!(m.gm(0.0), 0.0);
        assert_eq!(m.ro(0.0), f64::INFINITY);
        assert_eq!(m.vov_for_id(-1e-6), 0.0);
    }

    #[test]
    fn longer_channel_gives_higher_ro() {
        let short = Mosfet::new(MosType::Nmos, 10e-6, 0.18e-6);
        let long = Mosfet::new(MosType::Nmos, 10e-6, 1.0e-6);
        let id = 50e-6;
        assert!(long.ro(id) > short.ro(id));
        assert!(long.intrinsic_gain(id) > short.intrinsic_gain(id) * 0.9);
    }

    #[test]
    fn pmos_weaker_than_nmos() {
        let n = Mosfet::new(MosType::Nmos, 10e-6, 0.18e-6);
        let p = Mosfet::new(MosType::Pmos, 10e-6, 0.18e-6);
        assert!(n.gm(100e-6) > p.gm(100e-6));
        assert_eq!(p.mos_type(), MosType::Pmos);
    }

    #[test]
    fn capacitances_scale_with_geometry() {
        let small = Mosfet::new(MosType::Nmos, 5e-6, 0.18e-6);
        let wide = Mosfet::new(MosType::Nmos, 50e-6, 0.18e-6);
        assert!(wide.cgs() > small.cgs() * 9.0);
        assert!(wide.cgd() > small.cgd() * 9.0);
        assert!(wide.cdb() > small.cdb() * 9.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let _ = Mosfet::new(MosType::Nmos, 0.0, 0.18e-6);
    }

    #[test]
    fn parallel_helper() {
        assert_eq!(parallel(2.0, 2.0), 1.0);
        assert_eq!(parallel(f64::INFINITY, 5.0), 5.0);
        assert_eq!(parallel(5.0, f64::INFINITY), 5.0);
    }

    #[test]
    fn custom_process_is_used() {
        let p = ProcessParams {
            kp: 1e-3,
            ..PROCESS_180NM_NMOS
        };
        let m = Mosfet::with_process(MosType::Nmos, 1e-6, 1e-6, p);
        assert_eq!(m.params().kp, 1e-3);
    }

    proptest! {
        #[test]
        fn prop_gm_over_id_efficiency(vov in 0.05..0.6f64) {
            // gm/Id = 2/Vov for the square law: a fundamental identity.
            let m = nmos();
            let id = m.id_sat(vov);
            let gm_over_id = m.gm(id) / id;
            prop_assert!((gm_over_id - 2.0 / vov).abs() / (2.0 / vov) < 1e-9);
        }

        #[test]
        fn prop_intrinsic_gain_decreases_with_current_density(
            scale in 1.1..10.0f64
        ) {
            // For fixed geometry, gm·ro ∝ 1/sqrt(Id): higher current, less gain.
            let m = nmos();
            let id = 10e-6;
            prop_assert!(m.intrinsic_gain(id) > m.intrinsic_gain(id * scale));
        }
    }
}
