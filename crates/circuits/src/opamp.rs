//! Two-stage Miller-compensated operational amplifier (10 design variables,
//! 180nm process) — the paper's first benchmark circuit (§IV-A, Fig. 3).
//!
//! The amplifier is the classic textbook topology: NMOS differential pair
//! (M1/M2) with PMOS mirror load (M3/M4), NMOS tail current source, and a
//! common-source NMOS second stage (M6) with PMOS current-source load (M7),
//! compensated by a Miller capacitor `Cc` with series nulling resistor `Rz`
//! driving a fixed 3pF load.
//!
//! The performance extraction follows standard hand analysis:
//!
//! * **GAIN** — `A_v = gm1·(ro2∥ro4) · gm6·(ro6∥ro7)` in dB.
//! * **UGF** — `f_u = gm1 / (2π·Cc)`, de-rated smoothly when the phase
//!   margin collapses (a ringing amplifier's measured unity-gain crossing is
//!   garbage, which is exactly what a transient HSPICE testbench reports).
//! * **PM** — `90° − Σ atan(f_u/f_p) ± atan(f_u/f_z)` over the nondominant
//!   pole, the mirror pole, the nulling-resistor pole, and the Miller zero
//!   (LHP when `Rz > 1/gm6`, RHP otherwise).
//!
//! Designs that run out of supply headroom (devices falling out of
//! saturation) receive a smooth penalty, mimicking the performance cliff a
//! real testbench measures.

use easybo_opt::Bounds;

use crate::corner::Corner;
use crate::mosfet::{parallel, MosType, Mosfet};
use crate::{Circuit, CornerCircuit, Performances};

/// Fixed load capacitance at the output (F).
const C_LOAD: f64 = 3e-12;
/// Voltage headroom margin required beyond the saturation voltages (V).
const HEADROOM_MARGIN: f64 = 0.15;
/// PM level (degrees) below which the measured UGF starts collapsing.
const PM_KNEE_DEG: f64 = 40.0;
/// Softness (degrees) of the UGF collapse around the knee.
const PM_KNEE_WIDTH: f64 = 12.0;

/// Design-variable indices, in the order the optimizer sees them.
///
/// | idx | variable | meaning | range |
/// |-----|----------|---------|-------|
/// | 0 | `w1` | diff-pair width (m) | 5µ – 100µ |
/// | 1 | `l1` | diff-pair length (m) | 0.18µ – 1µ |
/// | 2 | `w3` | mirror-load width (m) | 2µ – 60µ |
/// | 3 | `l3` | mirror-load length (m) | 0.18µ – 1µ |
/// | 4 | `w6` | 2nd-stage width (m) | 10µ – 200µ |
/// | 5 | `l6` | 2nd-stage length (m) | 0.18µ – 1µ |
/// | 6 | `ib` | bias reference (A) | 5µ – 50µ |
/// | 7 | `mb` | tail mirror ratio | 1 – 8 |
/// | 8 | `cc` | Miller cap (F) | 0.2p – 3p |
/// | 9 | `rz` | nulling resistor (Ω) | 300 – 10k |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpAmpVar {
    /// Diff-pair width.
    W1 = 0,
    /// Diff-pair length.
    L1 = 1,
    /// Mirror-load width.
    W3 = 2,
    /// Mirror-load length.
    L3 = 3,
    /// Second-stage width.
    W6 = 4,
    /// Second-stage length.
    L6 = 5,
    /// Bias reference current.
    Ib = 6,
    /// Tail mirror ratio.
    Mb = 7,
    /// Miller compensation capacitor.
    Cc = 8,
    /// Nulling resistor.
    Rz = 9,
}

/// The two-stage op-amp benchmark (10 design variables).
///
/// # Example
///
/// ```
/// use easybo_circuits::{Circuit, opamp::TwoStageOpAmp};
///
/// let amp = TwoStageOpAmp::new();
/// assert_eq!(amp.dim(), 10);
/// let perf = amp.performances(&amp.bounds().center());
/// // A mid-range design is a working amplifier.
/// assert!(perf.get("gain_db").unwrap() > 30.0);
/// ```
#[derive(Debug, Clone)]
pub struct TwoStageOpAmp {
    bounds: Bounds,
}

impl TwoStageOpAmp {
    /// Creates the benchmark with the standard design-variable bounds.
    pub fn new() -> Self {
        let bounds = Bounds::new(vec![
            (5e-6, 100e-6),   // w1
            (0.18e-6, 1e-6),  // l1
            (2e-6, 60e-6),    // w3
            (0.18e-6, 1e-6),  // l3
            (10e-6, 200e-6),  // w6
            (0.18e-6, 1e-6),  // l6
            (5e-6, 50e-6),    // ib
            (1.0, 8.0),       // mb
            (0.2e-12, 3e-12), // cc
            (300.0, 10e3),    // rz
        ])
        .expect("static op-amp bounds are valid");
        TwoStageOpAmp { bounds }
    }

    /// Detailed operating-point and small-signal analysis at the nominal
    /// corner. Bitwise identical to `analyze_at(x, &Corner::nominal())`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 10`.
    pub fn analyze(&self, x: &[f64]) -> OpAmpAnalysis {
        self.analyze_at(x, &Corner::nominal())
    }

    /// Detailed analysis at an explicit PVT [`Corner`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 10`.
    pub fn analyze_at(&self, x: &[f64], corner: &Corner) -> OpAmpAnalysis {
        assert_eq!(x.len(), 10, "op-amp expects 10 design variables");
        let x = self.bounds.clamp(x);
        let (w1, l1, w3, l3, w6, l6) = (x[0], x[1], x[2], x[3], x[4], x[5]);
        let (ib, mb, cc, rz) = (x[6], x[7], x[8], x[9]);
        let vdd = corner.vdd;

        // --- Bias ---------------------------------------------------------
        let i_tail = mb * ib;
        let i1 = 0.5 * i_tail; // per diff-pair branch
        let i6 = 2.0 * i_tail; // second stage (2x mirror)

        let m1 = Mosfet::with_process(MosType::Nmos, w1, l1, corner.nmos);
        let m3 = Mosfet::with_process(MosType::Pmos, w3, l3, corner.pmos);
        let m6 = Mosfet::with_process(MosType::Nmos, w6, l6, corner.nmos);
        // Fixed-geometry bias devices: tail mirror and 2nd-stage load.
        let m_tail =
            Mosfet::with_process(MosType::Nmos, (5e-6 * mb).max(1e-6), 0.5e-6, corner.nmos);
        let m7 = Mosfet::with_process(MosType::Pmos, (2.0 * w3).max(1e-6), l3, corner.pmos);

        // --- Small signal ---------------------------------------------------
        let gm1 = m1.gm_eff(i1);
        let a1 = gm1 * parallel(m1.ro(i1), m3.ro(i1));
        let gm6 = m6.gm_eff(i6);
        let a2 = gm6 * parallel(m6.ro(i6), m7.ro(i6));
        let av = (a1 * a2).max(1e-3);
        let gain_db = 20.0 * av.log10();

        // --- Poles & zeros --------------------------------------------------
        // Inter-stage node and output node capacitances.
        let c1 = m6.cgs() + m1.cdb() + m3.cdb() + m3.cgd();
        let c2 = C_LOAD + m6.cdb() + m7.cdb();
        let fu = gm1 / (2.0 * std::f64::consts::PI * cc); // Miller-dominant UGF
                                                          // Nondominant pole (exact two-stage expression).
        let fp2 = gm6 * cc / (2.0 * std::f64::consts::PI * (c1 * c2 + cc * (c1 + c2)));
        // Mirror pole at the M3/M4 gate node.
        let fp3 = m3.gm_eff(i1) / (2.0 * std::f64::consts::PI * 2.0 * m3.cgs());
        // Pole introduced by the nulling resistor branch.
        let fp4 = 1.0 / (2.0 * std::f64::consts::PI * rz * c1.max(1e-18));
        // Miller zero: LHP when rz > 1/gm6 (phase lead), RHP otherwise.
        // The LHP lead only gets partial credit: a poly resistor cannot
        // track 1/gm6 across process corners, so exact pole-zero
        // cancellation is never bankable (ZETA models the residual).
        const ZETA: f64 = 0.5;
        let zden = 1.0 / gm6 - rz;
        let fz = if zden.abs() > 1e-12 {
            Some((
                1.0 / (2.0 * std::f64::consts::PI * cc * zden.abs()),
                zden < 0.0, // true => LHP (lead)
            ))
        } else {
            None
        };
        // Phase margin at frequency f for this pole/zero constellation.
        let pm_at = |f: f64| -> f64 {
            let deg = |r: f64| r.atan().to_degrees();
            let mut pm = 90.0 - deg(f / fp2) - deg(f / fp3) - deg(f / fp4);
            if let Some((z, lhp)) = fz {
                if lhp {
                    pm += ZETA * deg(f / z);
                } else {
                    pm -= deg(f / z);
                }
            }
            pm
        };
        let pm = pm_at(fu).clamp(0.0, 95.0);

        // The loop phase eventually reaches -180° (pole losses saturate at
        // 3x90° against at most ZETA·90° of zero lead): beyond that crossing
        // no unity-gain bandwidth is measurable. Bisect for f180.
        let f180 = {
            let (mut lo, mut hi) = (1e3, 1e13);
            if pm_at(hi) > 0.0 {
                hi // pathologically wide: no crossing below 10 THz
            } else {
                for _ in 0..80 {
                    let mid = (lo * hi).sqrt();
                    if pm_at(mid) > 0.0 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                hi
            }
        };

        // A transient testbench cannot measure a clean unity-gain crossing
        // on a ringing amplifier: cap the reported UGF at the -180° crossing
        // and de-rate it smoothly once PM falls below the knee.
        let stability = 1.0 / (1.0 + (-(pm - PM_KNEE_DEG) / PM_KNEE_WIDTH).exp());
        let ugf_measured = fu.min(f180) * stability;

        // --- Headroom feasibility ------------------------------------------
        // Input branch: tail Vdsat + pair Vov + mirror |Vgs| must fit.
        let stack1 = m_tail.vdsat(i_tail) + m1.vov_for_id(i1) + m3.vth() + m3.vov_for_id(i1);
        // Output branch: both output devices in saturation with margin.
        let stack2 = m6.vdsat(i6) + m7.vdsat(i6);
        let viol = (stack1 - (vdd - HEADROOM_MARGIN)).max(0.0)
            + (stack2 - (vdd - 2.0 * HEADROOM_MARGIN)).max(0.0);
        let penalty = 400.0 * viol * viol + 100.0 * viol;

        OpAmpAnalysis {
            gain_db,
            ugf_hz: ugf_measured,
            pm_deg: pm,
            i_tail,
            i6,
            gm1,
            gm6,
            fp2_hz: fp2,
            headroom_violation: viol,
            penalty,
        }
    }
}

impl Default for TwoStageOpAmp {
    fn default() -> Self {
        TwoStageOpAmp::new()
    }
}

/// Full analysis output of [`TwoStageOpAmp::analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpAmpAnalysis {
    /// DC gain (dB).
    pub gain_db: f64,
    /// Measured unity-gain frequency (Hz), de-rated when unstable.
    pub ugf_hz: f64,
    /// Phase margin (degrees, clamped to [0, 95]).
    pub pm_deg: f64,
    /// Tail current (A).
    pub i_tail: f64,
    /// Second-stage current (A).
    pub i6: f64,
    /// Input-pair transconductance (S).
    pub gm1: f64,
    /// Second-stage transconductance (S).
    pub gm6: f64,
    /// Nondominant pole (Hz).
    pub fp2_hz: f64,
    /// Total saturation-headroom violation (V; 0 when feasible).
    pub headroom_violation: f64,
    /// FOM penalty derived from the violation.
    pub penalty: f64,
}

impl Circuit for TwoStageOpAmp {
    fn name(&self) -> &str {
        "two-stage-opamp"
    }

    fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    fn performances(&self, x: &[f64]) -> Performances {
        let a = self.analyze(x);
        Performances::new()
            .with("gain_db", a.gain_db)
            .with("ugf_hz", a.ugf_hz)
            .with("pm_deg", a.pm_deg)
            .with("headroom_violation", a.headroom_violation)
    }

    /// Eq. (10) of the paper: `1.2·GAIN + 10·UGF + 1.6·PM`, with GAIN in dB,
    /// UGF in units of 10 MHz, PM in degrees, minus the headroom penalty.
    fn fom(&self, x: &[f64]) -> f64 {
        let a = self.analyze(x);
        1.2 * a.gain_db + 10.0 * (a.ugf_hz / 1e7) + 1.6 * a.pm_deg - a.penalty
    }
}

impl CornerCircuit for TwoStageOpAmp {
    fn performances_at(&self, x: &[f64], corner: &Corner) -> Performances {
        let a = self.analyze_at(x, corner);
        Performances::new()
            .with("gain_db", a.gain_db)
            .with("ugf_hz", a.ugf_hz)
            .with("pm_deg", a.pm_deg)
            .with("headroom_violation", a.headroom_violation)
    }

    fn fom_at(&self, x: &[f64], corner: &Corner) -> f64 {
        let a = self.analyze_at(x, corner);
        1.2 * a.gain_db + 10.0 * (a.ugf_hz / 1e7) + 1.6 * a.pm_deg - a.penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amp() -> TwoStageOpAmp {
        TwoStageOpAmp::new()
    }

    /// A hand-designed, sensible operating point.
    fn good_design() -> Vec<f64> {
        vec![
            30e-6,   // w1
            0.5e-6,  // l1
            20e-6,   // w3
            0.5e-6,  // l3
            80e-6,   // w6
            0.3e-6,  // l6
            30e-6,   // ib
            4.0,     // mb
            1.5e-12, // cc
            3e3,     // rz
        ]
    }

    #[test]
    fn good_design_is_a_working_amplifier() {
        let a = amp().analyze(&good_design());
        assert!(a.gain_db > 50.0, "gain {}", a.gain_db);
        assert!(a.pm_deg > 30.0, "pm {}", a.pm_deg);
        assert!(a.ugf_hz > 1e7, "ugf {}", a.ugf_hz);
        assert_eq!(a.headroom_violation, 0.0);
    }

    #[test]
    fn fom_is_finite_everywhere_on_a_grid() {
        let amp = amp();
        let b = amp.bounds().clone();
        for i in 0..200 {
            // Deterministic pseudo-grid over the box.
            let u: Vec<f64> = (0..10)
                .map(|d| (((i * 37 + d * 101) % 97) as f64) / 96.0)
                .collect();
            let x = b.from_unit(&u);
            let f = amp.fom(&x);
            assert!(f.is_finite(), "non-finite FOM at {x:?}");
        }
    }

    #[test]
    fn bigger_cc_lowers_ugf() {
        // Compare two designs that are both comfortably stable so the
        // measured UGF tracks the raw Miller UGF.
        let amp = amp();
        let lo = good_design(); // cc = 1p, PM ≈ 60°
        let mut hi = good_design();
        hi[OpAmpVar::Cc as usize] = 4e-12;
        let a_lo = amp.analyze(&lo);
        let a_hi = amp.analyze(&hi);
        assert!(a_lo.pm_deg > 45.0, "precondition: stable baseline");
        assert!(a_lo.ugf_hz > a_hi.ugf_hz);
        // …and the bigger cap improves phase margin.
        assert!(a_hi.pm_deg > a_lo.pm_deg);
    }

    #[test]
    fn undercompensated_design_loses_phase_margin() {
        // With too little Miller cap the raw UGF crosses the nondominant
        // pole and PM collapses.
        let amp = amp();
        let mut tiny = good_design();
        tiny[OpAmpVar::Cc as usize] = 0.3e-12;
        assert!(amp.analyze(&tiny).pm_deg < amp.analyze(&good_design()).pm_deg);
    }

    #[test]
    fn longer_channels_increase_gain() {
        // Lengthen both stages' devices so every output resistance rises.
        let amp = amp();
        let mut short = good_design();
        let mut long = good_design();
        for var in [OpAmpVar::L1, OpAmpVar::L3, OpAmpVar::L6] {
            short[var as usize] = 0.2e-6;
            long[var as usize] = 1.5e-6;
        }
        assert!(amp.analyze(&long).gain_db > amp.analyze(&short).gain_db);
    }

    #[test]
    fn more_current_raises_ugf() {
        let amp = amp();
        let mut lo = good_design();
        let mut hi = good_design();
        lo[OpAmpVar::Ib as usize] = 4e-6;
        hi[OpAmpVar::Ib as usize] = 30e-6;
        assert!(amp.analyze(&hi).gm1 > amp.analyze(&lo).gm1);
        assert!(amp.analyze(&hi).ugf_hz > amp.analyze(&lo).ugf_hz);
    }

    #[test]
    fn headroom_penalty_triggers_for_greedy_designs() {
        let amp = amp();
        let mut greedy = good_design();
        // Max current through minimum-size devices: enormous Vov.
        greedy[OpAmpVar::Ib as usize] = 50e-6;
        greedy[OpAmpVar::Mb as usize] = 8.0;
        greedy[OpAmpVar::W1 as usize] = 1e-6;
        greedy[OpAmpVar::W3 as usize] = 1e-6;
        greedy[OpAmpVar::W6 as usize] = 2e-6;
        let a = amp.analyze(&greedy);
        assert!(a.headroom_violation > 0.0);
        assert!(a.penalty > 0.0);
    }

    #[test]
    fn unstable_design_reports_tiny_ugf() {
        let amp = amp();
        let mut wild = good_design();
        // Minimum compensation, huge first-stage current: PM collapses.
        wild[OpAmpVar::Cc as usize] = 0.2e-12;
        wild[OpAmpVar::Ib as usize] = 50e-6;
        wild[OpAmpVar::Mb as usize] = 8.0;
        wild[OpAmpVar::W1 as usize] = 100e-6;
        wild[OpAmpVar::Rz as usize] = 100.0;
        let a = amp.analyze(&wild);
        if a.pm_deg < 10.0 {
            // The measured UGF must be a small fraction of the raw Miller UGF.
            let raw_fu = a.gm1 / (2.0 * std::f64::consts::PI * 0.2e-12);
            assert!(a.ugf_hz < raw_fu * 0.15, "ugf {} raw {raw_fu}", a.ugf_hz);
        }
    }

    #[test]
    fn nulling_resistor_adds_phase_lead() {
        let amp = amp();
        let mut no_rz = good_design();
        let mut with_rz = good_design();
        no_rz[OpAmpVar::Rz as usize] = 100.0; // ≈ RHP zero
        with_rz[OpAmpVar::Rz as usize] = 5e3; // LHP zero
        let a0 = amp.analyze(&no_rz);
        let a1 = amp.analyze(&with_rz);
        assert!(a1.pm_deg > a0.pm_deg, "{} vs {}", a1.pm_deg, a0.pm_deg);
    }

    #[test]
    fn fom_composition_matches_metrics() {
        let amp = amp();
        let x = good_design();
        let a = amp.analyze(&x);
        let expect = 1.2 * a.gain_db + 10.0 * (a.ugf_hz / 1e7) + 1.6 * a.pm_deg - a.penalty;
        assert!((amp.fom(&x) - expect).abs() < 1e-9);
    }

    #[test]
    fn out_of_bounds_inputs_are_clamped_not_panicking() {
        let amp = amp();
        let mut x = good_design();
        x[0] = 1.0; // 1 meter wide transistor
        assert!(amp.fom(&x).is_finite());
    }

    #[test]
    fn circuit_trait_surface() {
        let amp = amp();
        assert_eq!(amp.name(), "two-stage-opamp");
        assert_eq!(amp.dim(), 10);
        let p = amp.performances(&good_design());
        assert_eq!(p.len(), 4);
        assert!(p.get("pm_deg").unwrap() > 0.0);
    }

    #[test]
    fn nominal_corner_is_bitwise_analyze() {
        let amp = amp();
        let x = good_design();
        assert_eq!(amp.analyze(&x), amp.analyze_at(&x, &Corner::nominal()));
        assert_eq!(amp.fom(&x), amp.fom_at(&x, &Corner::nominal()));
        assert_eq!(
            amp.performances(&x),
            amp.performances_at(&x, &Corner::nominal())
        );
    }

    #[test]
    fn corners_change_the_answer() {
        let amp = amp();
        let x = good_design();
        let tt = amp.fom_at(&x, &Corner::nominal());
        let ss = amp.fom_at(&x, &Corner::ss());
        let ff = amp.fom_at(&x, &Corner::ff());
        assert!(ss.is_finite() && ff.is_finite());
        assert_ne!(tt, ss);
        assert_ne!(tt, ff);
        // Slow-cold corner loses gain/bandwidth on a sensible design.
        assert!(ss < tt, "ss {ss} vs tt {tt}");
    }

    #[test]
    fn fom_is_continuous_under_small_perturbations() {
        let amp = amp();
        let x = good_design();
        let f0 = amp.fom(&x);
        for d in 0..10 {
            let mut xp = x.clone();
            let (lo, hi) = amp.bounds().pair(d);
            xp[d] += (hi - lo) * 1e-7;
            let f1 = amp.fom(&xp);
            assert!(
                (f1 - f0).abs() < 1.0,
                "discontinuity in dim {d}: {f0} -> {f1}"
            );
        }
    }
}
