//! Current-starved ring oscillator (7 design variables, 180nm process) —
//! an *extension* benchmark beyond the paper's two circuits, exercising a
//! different FOM structure (frequency-accuracy / power / jitter-proxy
//! trade-off typical of VCO sizing problems).
//!
//! Topology: an odd number of current-starved inverter stages; the starve
//! current sets the per-stage delay, and the inverter sizing sets the
//! swing-dependent delay floor and the power.
//!
//! First-order model:
//!
//! * per-stage delay `t_d ≈ C_node·V_sw / I_starve` plus the unstarved
//!   inverter delay floor;
//! * oscillation frequency `f = 1 / (2·N·t_d)`;
//! * power `P = N·(I_starve·V_dd + C_node·V_dd²·f)`;
//! * a phase-noise proxy that improves with swing and current (thermal
//!   noise averaging) — the classic Leeson-style `1/(I·V_sw²)` scaling.

use easybo_opt::Bounds;

use crate::mosfet::{MosType, Mosfet, VDD_180NM};
use crate::{Circuit, Performances};

/// Target oscillation frequency (Hz).
pub const F_TARGET_HZ: f64 = 0.8e9;

/// Design-variable indices for [`RingOscillator`].
///
/// | idx | variable | meaning | range |
/// |-----|----------|---------|-------|
/// | 0 | `wn` | inverter NMOS width (m) | 1µ – 20µ |
/// | 1 | `wp` | inverter PMOS width (m) | 2µ – 50µ |
/// | 2 | `l` | inverter channel length (m) | 0.18µ – 0.5µ |
/// | 3 | `i_starve` | starve current per stage (A) | 10µ – 500µ |
/// | 4 | `stages` | number of stages (continuous, rounded odd) | 3 – 15 |
/// | 5 | `c_load` | extra node capacitance (F) | 1f – 50f |
/// | 6 | `v_swing` | internal swing fraction of Vdd | 0.5 – 1.0 |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingOscVar {
    /// NMOS width.
    Wn = 0,
    /// PMOS width.
    Wp = 1,
    /// Channel length.
    L = 2,
    /// Starve current.
    IStarve = 3,
    /// Stage count (continuous relaxation).
    Stages = 4,
    /// Extra node capacitance.
    CLoad = 5,
    /// Swing fraction.
    VSwing = 6,
}

/// The ring-oscillator extension benchmark (7 design variables).
///
/// # Example
///
/// ```
/// use easybo_circuits::{Circuit, ring_osc::RingOscillator};
///
/// let vco = RingOscillator::new();
/// assert_eq!(vco.dim(), 7);
/// let perf = vco.performances(&vco.bounds().center());
/// assert!(perf.get("freq_hz").unwrap() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct RingOscillator {
    bounds: Bounds,
}

impl RingOscillator {
    /// Creates the benchmark with the standard design-variable bounds.
    pub fn new() -> Self {
        let bounds = Bounds::new(vec![
            (1e-6, 20e-6),     // wn
            (2e-6, 50e-6),     // wp
            (0.18e-6, 0.5e-6), // l
            (10e-6, 500e-6),   // i_starve
            (3.0, 15.0),       // stages
            (1e-15, 50e-15),   // c_load
            (0.5, 1.0),        // v_swing
        ])
        .expect("static ring-oscillator bounds are valid");
        RingOscillator { bounds }
    }

    /// Detailed analysis.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 7`.
    pub fn analyze(&self, x: &[f64]) -> RingOscAnalysis {
        assert_eq!(x.len(), 7, "ring oscillator expects 7 design variables");
        let x = self.bounds.clamp(x);
        let (wn, wp, l, i_starve) = (x[0], x[1], x[2], x[3]);
        let (stages_raw, c_extra, v_swing) = (x[4], x[5], x[6]);
        // Round the continuous relaxation to the nearest odd stage count.
        let stages = {
            let k = stages_raw.round() as usize;
            if k.is_multiple_of(2) {
                (k + 1).min(15)
            } else {
                k
            }
        };

        let nmos = Mosfet::new(MosType::Nmos, wn, l);
        let pmos = Mosfet::new(MosType::Pmos, wp, l);
        // Node capacitance: next stage's gates + own drains + extra load.
        let c_node = nmos.cgs() + pmos.cgs() + nmos.cdb() + pmos.cdb() + c_extra;
        let v_sw = v_swing * VDD_180NM;

        // Starved delay plus the intrinsic inverter delay floor (strong
        // inverter drive at full swing).
        let i_drive = nmos
            .id_sat(VDD_180NM - nmos.vth())
            .min(pmos.id_sat(VDD_180NM - pmos.vth()));
        let t_floor = c_node * v_sw / i_drive.max(1e-9);
        let t_starved = c_node * v_sw / i_starve;
        let t_d = t_floor + t_starved;
        let freq = 1.0 / (2.0 * stages as f64 * t_d);

        // Power: static starve current in every stage plus dynamic CV²f.
        let power = stages as f64 * (i_starve * VDD_180NM + c_node * v_sw * v_sw * freq);

        // Phase-noise proxy (lower = better): thermal-noise-limited jitter
        // improves with swing, per-stage current and stage count.
        let noise_proxy =
            1.0 / (v_sw * v_sw * (i_starve / 1e-6) * (stages as f64).sqrt()).max(1e-12);

        RingOscAnalysis {
            freq_hz: freq,
            power_w: power,
            noise_proxy,
            stages,
            c_node,
        }
    }
}

impl Default for RingOscillator {
    fn default() -> Self {
        RingOscillator::new()
    }
}

/// Analysis output of [`RingOscillator::analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingOscAnalysis {
    /// Oscillation frequency (Hz).
    pub freq_hz: f64,
    /// Total power (W).
    pub power_w: f64,
    /// Phase-noise proxy (arbitrary units; lower is better).
    pub noise_proxy: f64,
    /// Realized (odd) stage count.
    pub stages: usize,
    /// Per-node capacitance (F).
    pub c_node: f64,
}

impl Circuit for RingOscillator {
    fn name(&self) -> &str {
        "ring-oscillator"
    }

    fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    fn performances(&self, x: &[f64]) -> Performances {
        let a = self.analyze(x);
        Performances::new()
            .with("freq_hz", a.freq_hz)
            .with("power_w", a.power_w)
            .with("noise_proxy", a.noise_proxy)
    }

    /// FOM: hit the 800 MHz target (Gaussian frequency-accuracy credit),
    /// minimize power, minimize the noise proxy.
    fn fom(&self, x: &[f64]) -> f64 {
        let a = self.analyze(x);
        let freq_err = (a.freq_hz - F_TARGET_HZ) / F_TARGET_HZ;
        let accuracy = 30.0 * (-8.0 * freq_err * freq_err).exp();
        let power_mw = a.power_w * 1e3;
        let noise_db = -10.0 * a.noise_proxy.log10();
        accuracy - power_mw + 0.1 * noise_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vco() -> RingOscillator {
        RingOscillator::new()
    }

    fn nominal() -> Vec<f64> {
        vec![4e-6, 10e-6, 0.18e-6, 150e-6, 5.0, 5e-15, 0.8]
    }

    #[test]
    fn nominal_design_oscillates_in_ghz_range() {
        let a = vco().analyze(&nominal());
        assert!(a.freq_hz > 1e8 && a.freq_hz < 2e10, "f = {}", a.freq_hz);
        assert!(a.power_w > 0.0);
        assert_eq!(a.stages, 5);
    }

    #[test]
    fn stage_count_rounds_to_odd() {
        let v = vco();
        for (raw, expect) in [(3.0, 3), (4.0, 5), (6.2, 7), (14.9, 15)] {
            let mut x = nominal();
            x[RingOscVar::Stages as usize] = raw;
            assert_eq!(v.analyze(&x).stages, expect, "raw {raw}");
        }
    }

    #[test]
    fn more_current_means_faster_and_hungrier() {
        let v = vco();
        let mut lo = nominal();
        let mut hi = nominal();
        lo[RingOscVar::IStarve as usize] = 30e-6;
        hi[RingOscVar::IStarve as usize] = 400e-6;
        let (a_lo, a_hi) = (v.analyze(&lo), v.analyze(&hi));
        assert!(a_hi.freq_hz > a_lo.freq_hz);
        assert!(a_hi.power_w > a_lo.power_w);
        assert!(a_hi.noise_proxy < a_lo.noise_proxy);
    }

    #[test]
    fn more_stages_slows_the_ring() {
        let v = vco();
        let mut few = nominal();
        let mut many = nominal();
        few[RingOscVar::Stages as usize] = 3.0;
        many[RingOscVar::Stages as usize] = 15.0;
        assert!(v.analyze(&few).freq_hz > v.analyze(&many).freq_hz);
    }

    #[test]
    fn extra_load_slows_the_ring() {
        let v = vco();
        let mut light = nominal();
        let mut heavy = nominal();
        light[RingOscVar::CLoad as usize] = 1e-15;
        heavy[RingOscVar::CLoad as usize] = 50e-15;
        assert!(v.analyze(&light).freq_hz > v.analyze(&heavy).freq_hz);
    }

    #[test]
    fn fom_finite_on_pseudo_grid() {
        let v = vco();
        let b = v.bounds().clone();
        for i in 0..150 {
            let u: Vec<f64> = (0..7)
                .map(|d| (((i * 29 + d * 53) % 71) as f64) / 70.0)
                .collect();
            assert!(v.fom(&b.from_unit(&u)).is_finite());
        }
    }

    #[test]
    fn fom_rewards_hitting_target_frequency() {
        let v = vco();
        // Find two designs identical except frequency accuracy by tweaking
        // the starve current around the target crossing.
        let b = v.bounds().clone();
        let mut best_err = f64::INFINITY;
        let mut best_fom = f64::NEG_INFINITY;
        let mut worst_err: f64 = 0.0;
        let mut worst_fom = 0.0;
        for i in 0..60 {
            let mut x = nominal();
            x[RingOscVar::IStarve as usize] = 10e-6 + i as f64 * 8e-6;
            let x = b.clamp(&x);
            let a = v.analyze(&x);
            let err = ((a.freq_hz - F_TARGET_HZ) / F_TARGET_HZ).abs();
            if err < best_err {
                best_err = err;
                best_fom = v.fom(&x);
            }
            if err > worst_err {
                worst_err = err;
                worst_fom = v.fom(&x);
            }
        }
        assert!(
            best_fom > worst_fom,
            "accurate design {best_fom} should beat inaccurate {worst_fom}"
        );
    }

    #[test]
    fn circuit_trait_surface() {
        let v = vco();
        assert_eq!(v.name(), "ring-oscillator");
        assert_eq!(v.performances(&nominal()).len(), 3);
    }
}
