//! Analytical analog-circuit performance models — the HSPICE substitute for
//! the EasyBO reproduction — plus standard synthetic benchmark functions.
//!
//! The paper evaluates EasyBO on two circuits simulated with commercial
//! HSPICE: a two-stage operational amplifier in a 180nm process (10 design
//! variables, Eq. 10: `FOM = 1.2·GAIN + 10·UGF + 1.6·PM`) and a class-E
//! power amplifier (12 design variables, Eq. 11: `FOM = 3·PAE + Pout`).
//! We replace netlist simulation with first-order analytical models built on
//! a hand-rolled square-law MOSFET device model:
//!
//! * [`opamp::TwoStageOpAmp`] — DC bias solve, small-signal gain, Miller
//!   compensation pole/zero analysis → GAIN (dB), UGF, PM (degrees).
//! * [`class_e::ClassEPa`] — classical Sokal/Raab class-E design equations
//!   with switch loss, tank detuning and drive power accounting → PAE, Pout.
//!
//! Both expose the same black-box structure the BO algorithms see in the
//! paper: smooth, multimodal, with soft-penalized infeasible regions (e.g.
//! transistors falling out of saturation), and nothing else about the model
//! is visible to the optimizer.
//!
//! # Example
//!
//! ```
//! use easybo_circuits::{Circuit, opamp::TwoStageOpAmp};
//!
//! let amp = TwoStageOpAmp::new();
//! let x = amp.bounds().center();
//! let perf = amp.performances(&x);
//! assert!(perf.get("gain_db").is_some());
//! assert!(amp.fom(&x).is_finite());
//! ```

pub mod class_e;
pub mod corner;
pub mod ldo;
pub mod matched;
pub mod mosfet;
pub mod opamp;
pub mod ring_osc;
pub mod testfns;

use easybo_opt::Bounds;

pub use corner::Corner;

/// A named bundle of circuit performance metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Performances {
    entries: Vec<(&'static str, f64)>,
}

impl Performances {
    /// Creates an empty bundle.
    pub fn new() -> Self {
        Performances::default()
    }

    /// Adds a metric (builder style).
    pub fn with(mut self, name: &'static str, value: f64) -> Self {
        self.entries.push((name, value));
        self
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Iterates `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bundle is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A sizable analog circuit: a box-constrained design space, a set of named
/// performance metrics, and the scalar figure of merit (Eq. 1 of the paper)
/// that the optimizers maximize.
pub trait Circuit: Send + Sync {
    /// Human-readable circuit name.
    fn name(&self) -> &str;

    /// The design space.
    fn bounds(&self) -> &Bounds;

    /// Number of design variables.
    fn dim(&self) -> usize {
        self.bounds().dim()
    }

    /// Evaluates all performance metrics at design `x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len() != dim()`.
    fn performances(&self, x: &[f64]) -> Performances;

    /// The weighted figure of merit to maximize.
    fn fom(&self, x: &[f64]) -> f64;
}

/// A circuit whose analysis is parameterized by a PVT [`Corner`] — the
/// hook multi-corner scenarios fan out over. The contract every
/// implementation upholds (and tests pin): evaluation at
/// [`Corner::nominal`] is *bitwise identical* to the plain [`Circuit`]
/// methods, so single-corner runs are unchanged by this trait existing.
pub trait CornerCircuit: Circuit {
    /// Performance metrics at design `x` under `corner`.
    fn performances_at(&self, x: &[f64], corner: &Corner) -> Performances;

    /// Figure of merit at design `x` under `corner`.
    fn fom_at(&self, x: &[f64], corner: &Corner) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performances_builder_and_lookup() {
        let p = Performances::new()
            .with("gain_db", 60.0)
            .with("pm_deg", 55.0);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.get("gain_db"), Some(60.0));
        assert_eq!(p.get("missing"), None);
        let names: Vec<_> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["gain_db", "pm_deg"]);
    }

    #[test]
    fn empty_performances() {
        let p = Performances::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.get("x"), None);
    }
}
