//! Class-E switching power amplifier (12 design variables, 180nm process) —
//! the paper's second benchmark circuit (§IV-B, Fig. 5).
//!
//! Topology (after the MACE paper the schematic is reproduced from): an NMOS
//! switch driven by an inverter chain, DC-fed through an RF choke, with a
//! shunt capacitor at the drain, a series L0–C0 resonant filter, and an
//! L-match network into the 50Ω load. Operating frequency is fixed at
//! 1.8 GHz.
//!
//! The performance model follows the classical Sokal/Raab analysis:
//!
//! * **Pout** — `0.5768·Vdd²/R_eff` at the ideal operating point, scaled by
//!   duty-cycle and drain efficiency factors.
//! * **Drain efficiency** — ideal class-E degraded by (a) switch on-
//!   resistance loss `1/(1 + 1.365·Ron/R_eff)`, (b) deviation of the total
//!   shunt susceptance from the class-E optimum, (c) series-tank detuning,
//!   (d) duty-cycle deviation from 50%, and (e) finite choke reactance.
//! * **PAE** — `(Pout − P_drive)/P_dc` with gate-drive power
//!   `P_drive ≈ C_g·V_dr²·f₀` and under-driven switches suffering higher
//!   `Ron` (the driver sizing trade-off).
//!
//! Excessive drain voltage stress (`≈3.56·Vdd` in class E) beyond the
//! device rating is penalized smoothly, bounding the supply knob.

use easybo_opt::Bounds;

use crate::mosfet::{MosType, Mosfet};
use crate::{Circuit, Performances};

/// Operating frequency (Hz).
pub const F0_HZ: f64 = 1.8e9;
/// Antenna / external load (Ω).
pub const R_LOAD: f64 = 50.0;
/// Class-E peak drain voltage factor.
const VPEAK_FACTOR: f64 = 3.56;
/// Maximum tolerable drain voltage for the (thick-oxide) switch (V).
const V_STRESS_LIMIT: f64 = 6.5;
/// Classic class-E power constant `8/(π²+4)`.
const CLASS_E_POWER: f64 = 0.5768;
/// Classic class-E shunt susceptance constant.
const CLASS_E_SHUNT: f64 = 0.1836;
/// Unloaded quality factor of the on-chip tank inductor (bounds how sharp
/// the resonance can get and adds the inductor's series loss).
const TANK_Q_UNLOADED: f64 = 15.0;

/// Design-variable indices for [`ClassEPa`].
///
/// | idx | variable | meaning | range |
/// |-----|----------|---------|-------|
/// | 0 | `w_sw` | switch width (m) | 300µ – 3000µ |
/// | 1 | `l_sw` | switch length (m) | 0.18µ – 0.5µ |
/// | 2 | `w_drv` | driver width (m) | 20µ – 400µ |
/// | 3 | `l_drv` | driver length (m) | 0.18µ – 0.5µ |
/// | 4 | `l_choke` | RF choke (H) | 4n – 40n |
/// | 5 | `c_shunt` | external shunt cap (F) | 0.5p – 8p |
/// | 6 | `l0` | series tank L (H) | 1n – 10n |
/// | 7 | `c0` | series tank C (F) | 0.5p – 12p |
/// | 8 | `l_match` | match inductor (H) | 0.2n – 6n |
/// | 9 | `c_match` | match capacitor (F) | 2p – 20p |
/// | 10 | `vdd` | supply (V) | 1.0 – 2.2 |
/// | 11 | `duty` | switch duty cycle | 0.35 – 0.65 |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassEVar {
    /// Switch width.
    WSw = 0,
    /// Switch length.
    LSw = 1,
    /// Driver width.
    WDrv = 2,
    /// Driver length.
    LDrv = 3,
    /// RF choke inductance.
    LChoke = 4,
    /// External shunt capacitance.
    CShunt = 5,
    /// Series tank inductance.
    L0 = 6,
    /// Series tank capacitance.
    C0 = 7,
    /// Matching inductor.
    LMatch = 8,
    /// Matching capacitor.
    CMatch = 9,
    /// Supply voltage.
    Vdd = 10,
    /// Duty cycle.
    Duty = 11,
}

/// The class-E power amplifier benchmark (12 design variables).
///
/// # Example
///
/// ```
/// use easybo_circuits::{Circuit, class_e::ClassEPa};
///
/// let pa = ClassEPa::new();
/// assert_eq!(pa.dim(), 12);
/// let perf = pa.performances(&pa.bounds().center());
/// assert!(perf.get("pout_w").unwrap() >= 0.0);
/// assert!(perf.get("pae").unwrap() <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ClassEPa {
    bounds: Bounds,
}

impl ClassEPa {
    /// Creates the benchmark with the standard design-variable bounds.
    pub fn new() -> Self {
        let bounds = Bounds::new(vec![
            (300e-6, 3000e-6), // w_sw
            (0.18e-6, 0.5e-6), // l_sw
            (20e-6, 400e-6),   // w_drv
            (0.18e-6, 0.5e-6), // l_drv
            (4e-9, 40e-9),     // l_choke
            (0.5e-12, 8e-12),  // c_shunt
            (1e-9, 10e-9),     // l0
            (0.5e-12, 12e-12), // c0
            (0.2e-9, 6e-9),    // l_match
            (2e-12, 20e-12),   // c_match
            (1.0, 2.2),        // vdd
            (0.35, 0.65),      // duty
        ])
        .expect("static class-E bounds are valid");
        ClassEPa { bounds }
    }

    /// Detailed waveform-level analysis.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 12`.
    pub fn analyze(&self, x: &[f64]) -> ClassEAnalysis {
        assert_eq!(x.len(), 12, "class-E PA expects 12 design variables");
        let x = self.bounds.clamp(x);
        let (w_sw, l_sw, w_drv, l_drv) = (x[0], x[1], x[2], x[3]);
        let (l_choke, c_shunt, l0, c0) = (x[4], x[5], x[6], x[7]);
        let (l_match, c_match, vdd, duty) = (x[8], x[9], x[10], x[11]);
        let w0 = 2.0 * std::f64::consts::PI * F0_HZ;

        // --- L-match: series L, shunt C across the 50Ω load ---------------
        // Looking into the network from the PA side, the parallel RC section
        // transforms down: R_eff = RL / (1 + (ω·C·RL)²).
        let qc = w0 * c_match * R_LOAD;
        let r_eff = (R_LOAD / (1.0 + qc * qc)).max(0.2);
        // Residual series reactance of the match (ideally absorbed by the
        // tank; otherwise it detunes the filter).
        let x_match = w0 * l_match - w0 * c_match * R_LOAD * R_LOAD / (1.0 + qc * qc);

        // --- Switch and driver ---------------------------------------------
        let switch = Mosfet::new(MosType::Nmos, w_sw, l_sw);
        let driver = Mosfet::new(MosType::Nmos, w_drv, l_drv);
        // Gate capacitance the driver must swing every cycle.
        let c_gate = switch.cgs() + switch.cgd();
        // Driver strength: its RC time constant against the gate cap decides
        // how completely the switch gate reaches the 1.8V rail.
        let r_drv = 1.0 / (driver.params().kp * driver.aspect() * 0.9).max(1e-9);
        let tau = r_drv * c_gate;
        let settle = 1.0 - (-1.0 / (2.0 * F0_HZ * tau.max(1e-15))).exp();
        let v_gate = 1.8 * settle;
        let vov_drive = (v_gate - switch.vth()).max(0.02);
        let ron = 1.0 / (switch.params().kp * switch.aspect() * vov_drive);

        // --- Class-E operating point ---------------------------------------
        // Total shunt capacitance: external + switch output capacitance.
        let c_total = c_shunt + switch.cdb() + switch.cgd();
        let c_opt = CLASS_E_SHUNT / (w0 * r_eff);
        let shunt_ratio = c_total / c_opt;

        // Series tank: the inductor's finite unloaded Q adds a series loss
        // resistance, which both caps the loaded Q (bounding how sharp the
        // resonance is) and burns output power.
        let w_tank = 1.0 / (l0 * c0).sqrt();
        let r_loss = w0 * l0 / TANK_Q_UNLOADED;
        let r_total = r_eff + ron + r_loss;
        let q_loaded = (w0 * l0 / r_total).max(0.1);
        let detune = (w0 / w_tank - w_tank / w0) * q_loaded + x_match / r_total;
        let eta_tank = r_eff / (r_eff + r_loss);

        // Duty factor: ideal class E wants 50%.
        let duty_dev = duty - 0.5;

        // --- Output power and efficiency ------------------------------------
        let p_ideal = CLASS_E_POWER * vdd * vdd / r_eff;
        let eta_ron = 1.0 / (1.0 + 1.365 * ron / r_eff);
        let eta_shunt = (-0.8 * (shunt_ratio - 1.0) * (shunt_ratio - 1.0)).exp();
        let eta_tune = 1.0 / (1.0 + 0.35 * detune * detune);
        let eta_duty = (-5.0 * duty_dev * duty_dev).exp();
        let eta_choke = w0 * l_choke / (w0 * l_choke + 2.0 * r_eff);
        let eta = eta_ron * eta_shunt * eta_tune * eta_duty * eta_choke * eta_tank;

        let p_dc = p_ideal; // nominal DC draw at the class-E operating point
        let pout = eta * p_dc;
        // Gate-drive power: switching the gate plus the driver's own chain
        // (estimated as 40% overhead).
        let p_drive = 1.4 * c_gate * v_gate * v_gate * F0_HZ;
        let pae = if p_dc > 1e-9 {
            ((pout - p_drive) / p_dc).clamp(-1.0, 1.0)
        } else {
            -1.0
        };

        // --- Voltage stress --------------------------------------------------
        let v_peak = VPEAK_FACTOR * vdd;
        let stress = (v_peak - V_STRESS_LIMIT).max(0.0);
        let penalty = 2.0 * stress + 4.0 * stress * stress;

        ClassEAnalysis {
            pout_w: pout,
            pae,
            drain_efficiency: eta,
            r_eff,
            ron,
            c_opt,
            shunt_ratio,
            detune,
            p_drive_w: p_drive,
            v_peak,
            penalty,
        }
    }
}

impl Default for ClassEPa {
    fn default() -> Self {
        ClassEPa::new()
    }
}

/// Full analysis output of [`ClassEPa::analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassEAnalysis {
    /// RF output power (W).
    pub pout_w: f64,
    /// Power-added efficiency in [-1, 1].
    pub pae: f64,
    /// Drain efficiency in [0, 1].
    pub drain_efficiency: f64,
    /// Transformed load resistance seen by the switch (Ω).
    pub r_eff: f64,
    /// Switch on-resistance (Ω).
    pub ron: f64,
    /// Class-E optimal total shunt capacitance (F).
    pub c_opt: f64,
    /// Actual/optimal shunt capacitance ratio.
    pub shunt_ratio: f64,
    /// Normalized tank detuning (0 = tuned).
    pub detune: f64,
    /// Gate-drive power (W).
    pub p_drive_w: f64,
    /// Peak drain voltage (V).
    pub v_peak: f64,
    /// FOM penalty from voltage over-stress.
    pub penalty: f64,
}

impl Circuit for ClassEPa {
    fn name(&self) -> &str {
        "class-e-pa"
    }

    fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    fn performances(&self, x: &[f64]) -> Performances {
        let a = self.analyze(x);
        Performances::new()
            .with("pae", a.pae)
            .with("pout_w", a.pout_w)
            .with("drain_efficiency", a.drain_efficiency)
            .with("v_peak", a.v_peak)
    }

    /// Eq. (11) of the paper: `3·PAE + Pout` (PAE as a fraction, Pout in W),
    /// minus the voltage-stress penalty.
    fn fom(&self, x: &[f64]) -> f64 {
        let a = self.analyze(x);
        3.0 * a.pae + a.pout_w - a.penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pa() -> ClassEPa {
        ClassEPa::new()
    }

    /// A hand-tuned near-class-E design.
    fn good_design() -> Vec<f64> {
        let w0 = 2.0 * std::f64::consts::PI * F0_HZ;
        // Choose the match for R_eff ≈ 5Ω, then the class-E values around it.
        let c_match = (R_LOAD / 5.0 - 1.0_f64).sqrt() / (w0 * R_LOAD);
        let r_eff = 5.0;
        let c_opt = CLASS_E_SHUNT / (w0 * r_eff);
        vec![
            1500e-6,                         // w_sw
            0.18e-6,                         // l_sw
            200e-6,                          // w_drv
            0.18e-6,                         // l_drv
            20e-9,                           // l_choke
            (c_opt - 1.6e-12).max(0.15e-12), // c_shunt (minus device output cap)
            3e-9,                            // l0
            1.0 / (w0 * w0 * 3e-9),          // c0 tuned to f0
            1.0e-9,                          // l_match (partially cancels match reactance)
            c_match,                         // c_match
            1.6,                             // vdd
            0.5,                             // duty
        ]
    }

    #[test]
    fn good_design_is_efficient() {
        let a = pa().analyze(&good_design());
        assert!(a.drain_efficiency > 0.4, "eta {}", a.drain_efficiency);
        assert!(a.pae > 0.3, "pae {}", a.pae);
        assert!(a.pout_w > 0.1, "pout {}", a.pout_w);
        assert_eq!(a.penalty, 0.0);
    }

    #[test]
    fn fom_matches_paper_scale_somewhere() {
        // The paper reports FOMs in the 3.2–5.7 range; our good design
        // should land in the same decade.
        let f = pa().fom(&good_design());
        assert!(f > 1.0 && f < 10.0, "fom {f}");
    }

    #[test]
    fn fom_finite_on_pseudo_grid() {
        let pa = pa();
        let b = pa.bounds().clone();
        for i in 0..200 {
            let u: Vec<f64> = (0..12)
                .map(|d| (((i * 41 + d * 89) % 103) as f64) / 102.0)
                .collect();
            let x = b.from_unit(&u);
            assert!(pa.fom(&x).is_finite(), "non-finite FOM at {x:?}");
        }
    }

    #[test]
    fn detuned_tank_hurts_efficiency() {
        let pa = pa();
        let tuned = good_design();
        let mut detuned = tuned.clone();
        detuned[ClassEVar::C0 as usize] *= 2.0;
        assert!(pa.analyze(&detuned).drain_efficiency < pa.analyze(&tuned).drain_efficiency);
    }

    #[test]
    fn wrong_shunt_cap_hurts_efficiency() {
        let pa = pa();
        let tuned = good_design();
        let mut wrong = tuned.clone();
        wrong[ClassEVar::CShunt as usize] = 10e-12;
        assert!(pa.analyze(&wrong).drain_efficiency < pa.analyze(&tuned).drain_efficiency);
    }

    #[test]
    fn duty_off_center_hurts() {
        let pa = pa();
        let mut skewed = good_design();
        skewed[ClassEVar::Duty as usize] = 0.75;
        assert!(pa.analyze(&skewed).drain_efficiency < pa.analyze(&good_design()).drain_efficiency);
    }

    #[test]
    fn higher_vdd_gives_more_power_until_stress() {
        let pa = pa();
        let mut lo = good_design();
        let mut hi = good_design();
        lo[ClassEVar::Vdd as usize] = 1.0;
        hi[ClassEVar::Vdd as usize] = 1.7;
        assert!(pa.analyze(&hi).pout_w > pa.analyze(&lo).pout_w);
        // Pushing to the rail triggers the stress penalty (3.56·3.3 > 6.5).
        let mut max = good_design();
        max[ClassEVar::Vdd as usize] = 3.3;
        assert!(pa.analyze(&max).penalty > 0.0);
    }

    #[test]
    fn wider_switch_lowers_ron_but_costs_drive_power() {
        let pa = pa();
        let mut narrow = good_design();
        let mut wide = good_design();
        narrow[ClassEVar::WSw as usize] = 200e-6;
        wide[ClassEVar::WSw as usize] = 3000e-6;
        let a_n = pa.analyze(&narrow);
        let a_w = pa.analyze(&wide);
        assert!(a_w.ron < a_n.ron);
        assert!(a_w.p_drive_w > a_n.p_drive_w);
    }

    #[test]
    fn tiny_driver_underdrives_big_switch() {
        let pa = pa();
        let mut under = good_design();
        under[ClassEVar::WSw as usize] = 3000e-6;
        under[ClassEVar::WDrv as usize] = 5e-6;
        let mut strong = under.clone();
        strong[ClassEVar::WDrv as usize] = 400e-6;
        assert!(pa.analyze(&under).ron > pa.analyze(&strong).ron);
    }

    #[test]
    fn pae_below_drain_efficiency() {
        let a = pa().analyze(&good_design());
        assert!(a.pae <= a.drain_efficiency + 1e-12);
    }

    #[test]
    fn circuit_trait_surface() {
        let pa = pa();
        assert_eq!(pa.name(), "class-e-pa");
        assert_eq!(pa.dim(), 12);
        let p = pa.performances(&good_design());
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn fom_composition_matches_metrics() {
        let pa = pa();
        let x = good_design();
        let a = pa.analyze(&x);
        let expect = 3.0 * a.pae + a.pout_w - a.penalty;
        assert!((pa.fom(&x) - expect).abs() < 1e-12);
    }
}
