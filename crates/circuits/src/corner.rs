//! Process/voltage/temperature (PVT) corners for multi-corner sign-off.
//!
//! Real sizing flows never qualify a design at the typical point alone:
//! every candidate is re-simulated at a handful of PVT corners and the
//! *worst* figure of merit is what ships. A [`Corner`] bundles the three
//! knobs the analytical device models expose:
//!
//! * **process** — per-polarity [`ProcessParams`] (slow/fast skews scale
//!   `kp` and shift `vth`);
//! * **voltage** — the supply rail, ±10% of the nominal 1.8V;
//! * **temperature** — mobility degradation `kp ∝ (T/300K)^-1.5` and
//!   threshold drift `dVth/dT = −2mV/K`, folded into the process params
//!   so circuit models stay temperature-agnostic.
//!
//! The nominal corner reproduces the default device models *bitwise*:
//! `analyze_at(x, &Corner::nominal())` is exactly `analyze(x)` for every
//! circuit in the zoo, so single-corner benches are unchanged.

use crate::mosfet::{ProcessParams, PROCESS_180NM_NMOS, PROCESS_180NM_PMOS, VDD_180NM};

/// Nominal junction temperature the device models are extracted at (°C).
pub const T_NOMINAL_C: f64 = 27.0;

/// One PVT corner: per-polarity process parameters plus supply and
/// temperature. Build with [`Corner::nominal`] / [`Corner::ss`] /
/// [`Corner::ff`] or assemble a custom corner field-by-field.
#[derive(Debug, Clone, PartialEq)]
pub struct Corner {
    /// Corner name, used in telemetry and failure reasons; keep it free
    /// of `"` and `\` so JSONL sinks round-trip.
    pub name: &'static str,
    /// NMOS process parameters at this corner (temperature folded in).
    pub nmos: ProcessParams,
    /// PMOS process parameters at this corner (temperature folded in).
    pub pmos: ProcessParams,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Junction temperature (°C), recorded for reporting.
    pub temp_c: f64,
}

/// Applies a process skew (transconductance scale, threshold shift) and
/// temperature derating to one polarity's parameters.
fn skew(base: ProcessParams, kp_scale: f64, vth_shift: f64, temp_c: f64) -> ProcessParams {
    let t_ratio = (temp_c + 273.15) / (T_NOMINAL_C + 273.15);
    ProcessParams {
        kp: base.kp * kp_scale * t_ratio.powf(-1.5),
        vth: base.vth + vth_shift - 2e-3 * (temp_c - T_NOMINAL_C),
        ..base
    }
}

impl Corner {
    /// Typical process, nominal supply, room temperature. Bitwise
    /// identical to the default device models.
    pub fn nominal() -> Self {
        Corner {
            name: "tt",
            nmos: PROCESS_180NM_NMOS,
            pmos: PROCESS_180NM_PMOS,
            vdd: VDD_180NM,
            temp_c: T_NOMINAL_C,
        }
    }

    /// Slow/slow process at low supply and high temperature — the
    /// classic speed/gain worst case.
    pub fn ss() -> Self {
        let temp_c = 85.0;
        Corner {
            name: "ss",
            nmos: skew(PROCESS_180NM_NMOS, 0.8, 50e-3, temp_c),
            pmos: skew(PROCESS_180NM_PMOS, 0.8, 50e-3, temp_c),
            vdd: VDD_180NM * 0.9,
            temp_c,
        }
    }

    /// Fast/fast process at high supply and cold temperature — the
    /// classic power/stability worst case.
    pub fn ff() -> Self {
        let temp_c = -40.0;
        Corner {
            name: "ff",
            nmos: skew(PROCESS_180NM_NMOS, 1.2, -50e-3, temp_c),
            pmos: skew(PROCESS_180NM_PMOS, 1.2, -50e-3, temp_c),
            vdd: VDD_180NM * 1.1,
            temp_c,
        }
    }

    /// The standard three-corner sign-off set: `[tt, ss, ff]`.
    pub fn pvt_set() -> Vec<Corner> {
        vec![Corner::nominal(), Corner::ss(), Corner::ff()]
    }
}

impl Default for Corner {
    fn default() -> Self {
        Corner::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_bitwise_default_process() {
        let c = Corner::nominal();
        assert_eq!(c.nmos, PROCESS_180NM_NMOS);
        assert_eq!(c.pmos, PROCESS_180NM_PMOS);
        assert_eq!(c.vdd, VDD_180NM);
        assert_eq!(c, Corner::default());
    }

    #[test]
    fn slow_corner_is_slower_and_higher_vth() {
        let tt = Corner::nominal();
        let ss = Corner::ss();
        assert!(ss.nmos.kp < tt.nmos.kp);
        assert!(ss.pmos.kp < tt.pmos.kp);
        // +50mV skew dominates the -2mV/K·58K hot-temperature drop.
        assert!(ss.nmos.vth < tt.nmos.vth + 50e-3);
        assert!(ss.vdd < tt.vdd);
    }

    #[test]
    fn fast_corner_is_faster_and_lower_vth() {
        let tt = Corner::nominal();
        let ff = Corner::ff();
        assert!(ff.nmos.kp > tt.nmos.kp);
        assert!(ff.nmos.vth > tt.nmos.vth - 50e-3, "cold raises vth back up");
        assert!(ff.vdd > tt.vdd);
    }

    #[test]
    fn pvt_set_is_three_distinct_named_corners() {
        let set = Corner::pvt_set();
        assert_eq!(set.len(), 3);
        let names: Vec<_> = set.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["tt", "ss", "ff"]);
        assert_ne!(set[1], set[0]);
        assert_ne!(set[2], set[0]);
    }

    #[test]
    fn temperature_derating_is_monotone() {
        let hot = skew(PROCESS_180NM_NMOS, 1.0, 0.0, 125.0);
        let cold = skew(PROCESS_180NM_NMOS, 1.0, 0.0, -40.0);
        assert!(hot.kp < PROCESS_180NM_NMOS.kp);
        assert!(cold.kp > PROCESS_180NM_NMOS.kp);
        assert!(hot.vth < PROCESS_180NM_NMOS.vth);
        assert!(cold.vth > PROCESS_180NM_NMOS.vth);
    }
}
