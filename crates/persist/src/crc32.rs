//! CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) for section
//! checksums. Table-driven, computed once at first use.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    })
}

/// CRC-32 of `data`, matching `zlib.crc32` / `binascii.crc32`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"easybo snapshot payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
