//! Structured errors for snapshot reading and writing.

use std::fmt;
use std::io;

/// Everything that can go wrong saving or loading a snapshot. Corrupt
/// files never panic and never yield a half-restored session: every
/// decode failure is classified so callers can distinguish "wrong
/// file" from "damaged file" from "file from the future".
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure (open, read, write, sync, rename).
    Io {
        /// What the operation was trying to do.
        context: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// The file does not start with the `EZBOSNAP` magic — not a
    /// snapshot at all.
    BadMagic {
        /// The first bytes actually found.
        found: Vec<u8>,
    },
    /// The snapshot was written by a newer (or unknown) format version.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u32,
        /// Version this library reads and writes.
        supported: u32,
    },
    /// A section's payload does not match its stored CRC32 — the file
    /// was truncated or bit-flipped after writing.
    CorruptSection {
        /// Section name.
        name: String,
        /// CRC32 stored in the section table.
        expected: u32,
        /// CRC32 of the bytes actually present.
        actual: u32,
    },
    /// A required section is absent.
    MissingSection {
        /// Section name.
        name: String,
    },
    /// A section's payload passed its checksum but could not be decoded
    /// (internal inconsistency; should never happen for files this
    /// library wrote).
    Decode {
        /// What failed to decode.
        context: String,
    },
    /// The snapshot was captured under a different optimizer
    /// configuration than the one trying to resume it.
    ConfigMismatch {
        /// Fingerprint stored in the snapshot.
        expected: u64,
        /// Fingerprint of the resuming configuration.
        actual: u64,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { context, source } => {
                write!(f, "snapshot I/O failed while {context}: {source}")
            }
            PersistError::BadMagic { found } => {
                write!(f, "not an EasyBO snapshot (leading bytes {found:?})")
            }
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads \
                 version {supported}); bump the format version and add a migration \
                 to load it"
            ),
            PersistError::CorruptSection {
                name,
                expected,
                actual,
            } => write!(
                f,
                "snapshot section '{name}' is corrupt: CRC32 {actual:#010x} != stored {expected:#010x}"
            ),
            PersistError::MissingSection { name } => {
                write!(f, "snapshot is missing required section '{name}'")
            }
            PersistError::Decode { context } => {
                write!(f, "snapshot decode failed: {context}")
            }
            PersistError::ConfigMismatch { expected, actual } => write!(
                f,
                "snapshot was captured under config fingerprint {expected:#018x} but the \
                 resuming optimizer has {actual:#018x}; resume with the same bounds, \
                 seed, budget, and policy settings"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl PersistError {
    /// Wraps an [`io::Error`] with the operation that hit it.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        PersistError::Io {
            context: context.into(),
            source,
        }
    }

    /// A decode failure with context.
    pub fn decode(context: impl Into<String>) -> Self {
        PersistError::Decode {
            context: context.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_actionable() {
        let v = PersistError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(v.to_string().contains("bump the format version"));
        let c = PersistError::ConfigMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(c.to_string().contains("same bounds"));
        let s = PersistError::CorruptSection {
            name: "session".to_string(),
            expected: 0xdead_beef,
            actual: 0x1234_5678,
        };
        assert!(s.to_string().contains("session"));
        assert!(s.to_string().contains("0xdeadbeef"));
    }

    #[test]
    fn io_variant_preserves_source() {
        let e = PersistError::io(
            "opening /nope",
            io::Error::new(io::ErrorKind::NotFound, "gone"),
        );
        assert!(std::error::Error::source(&e).is_some());
    }
}
