//! The versioned snapshot container and the session codec.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! "EZBOSNAP"                    8-byte magic
//! u32 format version            readers reject other versions
//! u32 section count
//! per section:
//!   str  name                   length-prefixed UTF-8
//!   u64  payload length
//!   u32  CRC-32 of the payload
//!   [u8] payload
//! ```
//!
//! Sections are checksummed independently, so any bit flip or
//! truncation is reported as a [`PersistError::CorruptSection`] naming
//! the damaged section. Writes go through a temporary file in the same
//! directory followed by `fsync` + atomic rename: a crash mid-write
//! leaves the previous snapshot intact, never a torn file.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use easybo_exec::{InFlightTask, PendingBackoff, SessionParts, TaskSpan};

use crate::codec::{ByteReader, ByteWriter};
use crate::crc32::crc32;
use crate::error::PersistError;

/// Leading bytes of every snapshot file.
pub const MAGIC: &[u8; 8] = b"EZBOSNAP";

/// Current snapshot format version. Bump this (and keep a migration or
/// a clear rejection) whenever the encoding of any section changes —
/// the committed golden-file test fails loudly when an encoding change
/// forgets to.
pub const FORMAT_VERSION: u32 = 1;

/// A complete durable image of one optimization run: enough to resume
/// and reproduce the uninterrupted run bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSnapshot {
    /// Fingerprint of the optimizer configuration that produced the
    /// run; [`load_snapshot`] returns it verbatim and resuming code
    /// compares it against the live configuration.
    pub config_fingerprint: u64,
    /// Executor-independent session state (observations, trace,
    /// schedule, in-flight set, backoffs, counters, run clock).
    pub session: SessionParts,
    /// Opaque policy state (RNG stream, surrogate caches) captured via
    /// `AsyncPolicy::snapshot_state`; `None` for stateless policies.
    pub policy: Option<Vec<u8>>,
}

fn encode_points(w: &mut ByteWriter, points: &[Vec<f64>]) {
    w.put_usize(points.len());
    for p in points {
        w.put_f64s(p);
    }
}

fn decode_points(r: &mut ByteReader<'_>) -> Result<Vec<Vec<f64>>, PersistError> {
    let n = r.get_len(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_f64s()?);
    }
    Ok(out)
}

/// Encodes a [`SessionParts`] into the "session" section payload.
pub fn encode_session(parts: &SessionParts) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_usize(parts.workers);
    w.put_usize(parts.max_evals);
    w.put_usize(parts.issued);
    w.put_usize(parts.resolved);
    w.put_f64(parts.clock);
    encode_points(&mut w, &parts.pending);
    w.put_usize(parts.observations.len());
    for (x, y) in &parts.observations {
        w.put_f64s(x);
        w.put_f64(*y);
    }
    w.put_usize(parts.trace.len());
    for &(t, v) in &parts.trace {
        w.put_f64(t);
        w.put_f64(v);
    }
    w.put_usize(parts.spans.len());
    for s in &parts.spans {
        w.put_usize(s.worker);
        w.put_usize(s.task);
        w.put_f64(s.start);
        w.put_f64(s.end);
        w.put_bool(s.failed);
    }
    w.put_usize(parts.inflight.len());
    for i in &parts.inflight {
        w.put_usize(i.task);
        w.put_usize(i.attempt);
        w.put_f64s(&i.x);
        match i.started {
            None => w.put_bool(false),
            Some((worker, start)) => {
                w.put_bool(true);
                w.put_usize(worker);
                w.put_f64(start);
            }
        }
    }
    w.put_usize(parts.backoffs.len());
    for b in &parts.backoffs {
        w.put_f64(b.due);
        w.put_usize(b.worker);
        w.put_usize(b.task);
        w.put_usize(b.attempt);
        w.put_f64s(&b.x);
    }
    w.into_bytes()
}

/// Decodes a "session" section payload.
pub fn decode_session(bytes: &[u8]) -> Result<SessionParts, PersistError> {
    let mut r = ByteReader::new(bytes);
    let workers = r.get_usize()?;
    let max_evals = r.get_usize()?;
    let issued = r.get_usize()?;
    let resolved = r.get_usize()?;
    let clock = r.get_f64()?;
    let pending = decode_points(&mut r)?;
    let n = r.get_len(8)?;
    let mut observations = Vec::with_capacity(n);
    for _ in 0..n {
        let x = r.get_f64s()?;
        let y = r.get_f64()?;
        observations.push((x, y));
    }
    let n = r.get_len(16)?;
    let mut trace = Vec::with_capacity(n);
    for _ in 0..n {
        let t = r.get_f64()?;
        let v = r.get_f64()?;
        trace.push((t, v));
    }
    let n = r.get_len(33)?;
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        spans.push(TaskSpan {
            worker: r.get_usize()?,
            task: r.get_usize()?,
            start: r.get_f64()?,
            end: r.get_f64()?,
            failed: r.get_bool()?,
        });
    }
    let n = r.get_len(17)?;
    let mut inflight = Vec::with_capacity(n);
    for _ in 0..n {
        let task = r.get_usize()?;
        let attempt = r.get_usize()?;
        let x = r.get_f64s()?;
        let started = if r.get_bool()? {
            Some((r.get_usize()?, r.get_f64()?))
        } else {
            None
        };
        inflight.push(InFlightTask {
            task,
            attempt,
            x,
            started,
        });
    }
    let n = r.get_len(32)?;
    let mut backoffs = Vec::with_capacity(n);
    for _ in 0..n {
        backoffs.push(PendingBackoff {
            due: r.get_f64()?,
            worker: r.get_usize()?,
            task: r.get_usize()?,
            attempt: r.get_usize()?,
            x: r.get_f64s()?,
        });
    }
    r.finish("session section")?;
    Ok(SessionParts {
        workers,
        max_evals,
        issued,
        resolved,
        clock,
        pending,
        observations,
        trace,
        spans,
        inflight,
        backoffs,
    })
}

/// Serializes a snapshot to its container bytes.
pub fn encode_snapshot(snap: &RunSnapshot) -> Vec<u8> {
    let mut meta = ByteWriter::new();
    meta.put_u64(snap.config_fingerprint);
    meta.put_f64(snap.session.clock);
    meta.put_usize(snap.session.observations.len());
    meta.put_usize(snap.session.issued);

    let mut sections: Vec<(&str, Vec<u8>)> = vec![
        ("meta", meta.into_bytes()),
        ("session", encode_session(&snap.session)),
    ];
    if let Some(policy) = &snap.policy {
        sections.push(("policy", policy.clone()));
    }

    let mut w = ByteWriter::new();
    for &b in MAGIC {
        w.put_u8(b);
    }
    w.put_u32(FORMAT_VERSION);
    w.put_u32(sections.len() as u32);
    for (name, payload) in &sections {
        w.put_str(name);
        w.put_u64(payload.len() as u64);
        w.put_u32(crc32(payload));
        for &b in payload.iter() {
            w.put_u8(b);
        }
    }
    w.into_bytes()
}

/// Parses snapshot container bytes.
pub fn decode_snapshot(bytes: &[u8]) -> Result<RunSnapshot, PersistError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(PersistError::BadMagic {
            found: bytes[..bytes.len().min(MAGIC.len())].to_vec(),
        });
    }
    let mut r = ByteReader::new(&bytes[MAGIC.len()..]);
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let count = r.get_u32()?;
    let mut meta: Option<Vec<u8>> = None;
    let mut session: Option<Vec<u8>> = None;
    let mut policy: Option<Vec<u8>> = None;
    for _ in 0..count {
        let name = r.get_str()?;
        let len = r.get_usize()?;
        let stored_crc = r.get_u32()?;
        if r.remaining() < len {
            return Err(PersistError::CorruptSection {
                name,
                expected: stored_crc,
                actual: 0,
            });
        }
        let mut payload = Vec::with_capacity(len);
        for _ in 0..len {
            payload.push(r.get_u8()?);
        }
        let actual = crc32(&payload);
        if actual != stored_crc {
            return Err(PersistError::CorruptSection {
                name,
                expected: stored_crc,
                actual,
            });
        }
        match name.as_str() {
            "meta" => meta = Some(payload),
            "session" => session = Some(payload),
            "policy" => policy = Some(payload),
            // Unknown sections from future minor additions are ignored.
            _ => {}
        }
    }
    let meta = meta.ok_or(PersistError::MissingSection {
        name: "meta".to_string(),
    })?;
    let session_bytes = session.ok_or(PersistError::MissingSection {
        name: "session".to_string(),
    })?;
    let mut m = ByteReader::new(&meta);
    let config_fingerprint = m.get_u64()?;
    let _clock = m.get_f64()?;
    let _completed = m.get_usize()?;
    let _issued = m.get_usize()?;
    m.finish("meta section")?;
    let session = decode_session(&session_bytes)?;
    Ok(RunSnapshot {
        config_fingerprint,
        session,
        policy,
    })
}

/// Writes a snapshot to `path` atomically (temp file in the same
/// directory, `fsync`, rename) and returns the number of bytes
/// written. A crash at any point leaves either the old snapshot or the
/// new one — never a torn file.
pub fn save_snapshot(path: &Path, snap: &RunSnapshot) -> Result<usize, PersistError> {
    let bytes = encode_snapshot(snap);
    write_snapshot_bytes(path, &bytes)?;
    Ok(bytes.len())
}

/// The durable half of [`save_snapshot`]: writes pre-encoded snapshot
/// bytes to `path` atomically (temp file, `fsync`, rename). Split out so
/// callers can time encode and fsync separately.
pub fn write_snapshot_bytes(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir)
            .map_err(|e| PersistError::io(format!("creating {}", dir.display()), e))?;
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp)
            .map_err(|e| PersistError::io(format!("creating {}", tmp.display()), e))?;
        f.write_all(bytes)
            .map_err(|e| PersistError::io(format!("writing {}", tmp.display()), e))?;
        f.sync_all()
            .map_err(|e| PersistError::io(format!("syncing {}", tmp.display()), e))?;
    }
    fs::rename(&tmp, path).map_err(|e| {
        PersistError::io(
            format!("renaming {} to {}", tmp.display(), path.display()),
            e,
        )
    })?;
    Ok(())
}

/// Reads and validates a snapshot from `path`.
pub fn load_snapshot(path: &Path) -> Result<RunSnapshot, PersistError> {
    let bytes =
        fs::read(path).map_err(|e| PersistError::io(format!("reading {}", path.display()), e))?;
    decode_snapshot(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_parts() -> SessionParts {
        SessionParts {
            workers: 3,
            max_evals: 20,
            issued: 7,
            resolved: 5,
            clock: 123.456,
            pending: vec![vec![0.1, 0.2], vec![0.3, 0.4]],
            observations: vec![(vec![0.5, 0.6], 1.25), (vec![0.7, 0.8], f64::NAN)],
            trace: vec![(10.0, 1.25), (20.0, 1.25)],
            spans: vec![TaskSpan {
                worker: 1,
                task: 0,
                start: 0.0,
                end: 10.0,
                failed: false,
            }],
            inflight: vec![
                InFlightTask {
                    task: 5,
                    attempt: 2,
                    x: vec![0.9, 0.1],
                    started: Some((2, 99.5)),
                },
                InFlightTask {
                    task: 6,
                    attempt: 1,
                    x: vec![0.2, 0.3],
                    started: None,
                },
            ],
            backoffs: vec![PendingBackoff {
                due: 130.0,
                worker: 0,
                task: 4,
                attempt: 3,
                x: vec![0.4, 0.5],
            }],
        }
    }

    fn sample_snapshot() -> RunSnapshot {
        RunSnapshot {
            config_fingerprint: 0x1234_5678_9abc_def0,
            session: sample_parts(),
            policy: Some(vec![1, 2, 3, 255, 0]),
        }
    }

    fn bits(parts: &SessionParts) -> Vec<u64> {
        // PartialEq treats NaN != NaN; compare by encoded bytes instead.
        encode_session(parts)
            .chunks(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b[..c.len()].copy_from_slice(c);
                u64::from_le_bytes(b)
            })
            .collect()
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let snap = sample_snapshot();
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).expect("decodes");
        assert_eq!(back.config_fingerprint, snap.config_fingerprint);
        assert_eq!(back.policy, snap.policy);
        assert_eq!(bits(&back.session), bits(&snap.session));
        // And re-encoding is the byte identity.
        assert_eq!(encode_snapshot(&back), bytes);
    }

    #[test]
    fn missing_policy_section_is_none() {
        let snap = RunSnapshot {
            policy: None,
            ..sample_snapshot()
        };
        let back = decode_snapshot(&encode_snapshot(&snap)).expect("decodes");
        assert_eq!(back.policy, None);
    }

    #[test]
    fn bad_magic_is_structured() {
        let err = decode_snapshot(b"NOTASNAP....").expect_err("rejected");
        assert!(matches!(err, PersistError::BadMagic { .. }), "{err}");
        let err = decode_snapshot(b"EZ").expect_err("rejected");
        assert!(matches!(err, PersistError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn future_version_is_rejected_with_guidance() {
        let mut bytes = encode_snapshot(&sample_snapshot());
        bytes[8] = 0xff; // bump the little-endian version field
        let err = decode_snapshot(&bytes).expect_err("rejected");
        assert!(
            matches!(err, PersistError::UnsupportedVersion { found: 255, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("bump the format version"));
    }

    #[test]
    fn every_single_bit_flip_in_a_payload_is_detected() {
        let snap = sample_snapshot();
        let clean = encode_snapshot(&snap);
        // Flip one bit in the middle of the session payload.
        let mid = clean.len() / 2;
        for bit in 0..8 {
            let mut bytes = clean.clone();
            bytes[mid] ^= 1 << bit;
            let err = decode_snapshot(&bytes).expect_err("corruption detected");
            assert!(
                matches!(
                    err,
                    PersistError::CorruptSection { .. } | PersistError::Decode { .. }
                ),
                "flip at {mid}:{bit} gave {err}"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let clean = encode_snapshot(&sample_snapshot());
        for cut in [clean.len() - 1, clean.len() / 2, 13] {
            assert!(
                decode_snapshot(&clean[..cut]).is_err(),
                "truncation at {cut} undetected"
            );
        }
    }

    #[test]
    fn save_is_atomic_and_load_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "easybo-persist-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let path = dir.join("run.snap");
        let snap = sample_snapshot();
        let n = save_snapshot(&path, &snap).expect("saves");
        assert!(n > 0);
        assert!(
            !path.with_extension("snap.tmp").exists(),
            "temp file renamed away"
        );
        let back = load_snapshot(&path).expect("loads");
        assert_eq!(bits(&back.session), bits(&snap.session));
        // Overwrite in place: still atomic, still valid.
        save_snapshot(&path, &snap).expect("overwrites");
        assert!(load_snapshot(&path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_of_missing_file_is_io_error() {
        let err = load_snapshot(Path::new("/nonexistent/easybo.snap")).expect_err("missing");
        assert!(matches!(err, PersistError::Io { .. }), "{err}");
    }
}
