//! Durable checkpoint/resume for EasyBO optimization runs.
//!
//! Analog-sizing runs burn hours to days of simulator time; a crashed
//! coordinator must not discard them. This crate serializes the
//! complete state of an asynchronous session — the observed dataset,
//! best-so-far trace, committed schedule, in-flight attempts, retry
//! backoffs, run clock, and the policy's opaque state (RNG stream, GP
//! hyperparameters, standardization scalers) — into a versioned,
//! checksummed, atomically written snapshot file.
//!
//! Design rules:
//!
//! * **Hermetic**: `std` only. Scalars are stored as exact bit patterns
//!   (`f64::to_bits`), so restore is bit-identical and a resumed run
//!   reproduces the uninterrupted run's trace byte for byte.
//! * **Corruption-safe**: an 8-byte magic, a format version, and a
//!   CRC-32 per section turn any damage into a structured
//!   [`PersistError`] instead of a panic or a silently wrong resume.
//! * **Atomic**: writes land in a temp file that is fsynced and
//!   renamed over the target, so a crash mid-checkpoint preserves the
//!   previous snapshot.
//! * **Layered**: this crate depends only on `easybo-exec` (for the
//!   plain-data [`easybo_exec::SessionParts`]); the `easybo` core crate
//!   layers policy/GP capture on top via an opaque `policy` byte
//!   section, keeping executors free of any persistence dependency.
//!
//! # Example
//!
//! ```
//! use easybo_exec::SessionParts;
//! use easybo_persist::{load_snapshot, save_snapshot, RunSnapshot};
//!
//! let snap = RunSnapshot {
//!     config_fingerprint: 42,
//!     session: SessionParts::default(),
//!     policy: None,
//! };
//! let path = std::env::temp_dir().join("easybo-doc-example.snap");
//! save_snapshot(&path, &snap).unwrap();
//! let back = load_snapshot(&path).unwrap();
//! assert_eq!(back, snap);
//! # std::fs::remove_file(&path).ok();
//! ```

mod codec;
mod crc32;
mod error;
mod snapshot;

pub use codec::{ByteReader, ByteWriter};
pub use crc32::crc32;
pub use error::PersistError;
pub use snapshot::{
    decode_session, decode_snapshot, encode_session, encode_snapshot, load_snapshot, save_snapshot,
    write_snapshot_bytes, RunSnapshot, FORMAT_VERSION, MAGIC,
};
