//! Minimal little-endian byte codec.
//!
//! Every scalar is written as its exact bit pattern (`f64` via
//! [`f64::to_bits`]), so a decode → encode round trip is the identity
//! on bytes and a restored session is *bit-identical* to the captured
//! one — the property the headline kill-and-resume test asserts.

use crate::error::PersistError;

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a length-prefixed `f64` vector.
    pub fn put_f64s(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }
}

/// Checked little-endian reader over a byte slice. Every accessor
/// returns [`PersistError::Decode`] on truncation instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte was consumed — catches encoder/decoder
    /// drift that truncation checks alone would miss.
    pub fn finish(self, context: &str) -> Result<(), PersistError> {
        if self.remaining() != 0 {
            return Err(PersistError::decode(format!(
                "{context}: {} trailing bytes after decode",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::decode(format!(
                "truncated reading {what}: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        let s = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        let s = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` stored as `u64`, rejecting values beyond the
    /// platform word or implausibly larger than the remaining payload.
    pub fn get_usize(&mut self) -> Result<usize, PersistError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| PersistError::decode(format!("length {v} exceeds platform usize")))
    }

    /// Reads a length used to preallocate: additionally bounded by the
    /// remaining bytes so corrupt headers cannot trigger huge
    /// allocations.
    pub fn get_len(&mut self, elem_size: usize) -> Result<usize, PersistError> {
        let n = self.get_usize()?;
        if elem_size > 0 && n > self.remaining() / elem_size.max(1) + 1 {
            return Err(PersistError::decode(format!(
                "length {n} is larger than the remaining payload allows"
            )));
        }
        Ok(n)
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool byte (strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, PersistError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(PersistError::decode(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, PersistError> {
        let n = self.get_len(1)?;
        Ok(self.take(n, "byte string")?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, PersistError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes).map_err(|_| PersistError::decode("invalid UTF-8 string"))
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.get_len(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.get_f64()?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_bit_exactly() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_usize(42);
        w.put_f64(f64::NAN);
        w.put_f64(-0.0);
        w.put_f64(1.0 / 3.0);
        w.put_bool(true);
        w.put_str("σ̂ over µ");
        w.put_f64s(&[f64::INFINITY, f64::MIN_POSITIVE]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), (1.0f64 / 3.0).to_bits());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "σ̂ over µ");
        let v = r.get_f64s().unwrap();
        assert_eq!(v.len(), 2);
        assert!(v[0].is_infinite());
        r.finish("test").unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u64(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..6]);
        assert!(r.get_u64().is_err());
    }

    #[test]
    fn huge_lengths_are_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_f64s().is_err());
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let _ = r.get_u8().unwrap();
        assert!(r.finish("partial").is_err());
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let mut r = ByteReader::new(&[3]);
        assert!(r.get_bool().is_err());
    }
}
