//! TCP front end for the [`SessionManager`].
//!
//! One listener thread accepts connections; each connection gets a
//! handler thread, a `Hello` handshake with a protocol-version check,
//! and a bounded reply cache keyed by request id. The cache is what
//! turns the lossy wire into at-most-once semantics: a retransmitted
//! or chaos-duplicated request replays its original reply bytes
//! instead of re-executing, so a lease is never granted twice for one
//! ask. A connection that dies — cleanly or mid-frame — has its work
//! leases reclaimed via [`SessionManager::drop_connection`], putting
//! the items back in the pool for the next asker.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use easybo_persist::write_snapshot_bytes;

use crate::frame::{read_frame, write_frame, WireError, PROTOCOL_VERSION};
use crate::manager::{SessionManager, SessionSpec};
use crate::proto::{decode_message, encode_message, Message};

/// How often an idle connection handler wakes to poll the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Replies remembered per connection for duplicate-request replay.
/// Clients run lockstep (one outstanding request), so even a handful
/// is generous; the bound keeps a chatty connection's memory flat.
const REPLY_CACHE_SIZE: usize = 64;

/// One decoded `OpenSession` request, handed to the server's
/// [`SessionFactory`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenRequest {
    /// Black-box name workers resolve in their local registry.
    pub bench: String,
    /// Algorithm registry key (e.g. `"easybo"`, `"eps-greedy"`).
    pub algo: String,
    /// Seed for the initial design and the policy RNG.
    pub seed: u64,
    /// Virtual worker pool size (the async batch parallelism).
    pub workers: usize,
    /// Total task budget.
    pub max_evals: usize,
    /// Initial design points to draw.
    pub n_init: usize,
}

/// Maps an admin `OpenSession` request to a runnable [`SessionSpec`]
/// — supplied by the embedder, because only it knows which benches
/// exist, how to build a policy for an algorithm key, and what retry
/// discipline the deployment wants. Returning `Err` rejects the
/// request with a wire `Error` carrying the message.
pub type SessionFactory = dyn Fn(&OpenRequest) -> Result<SessionSpec, String> + Send + Sync;

/// A running service: listener thread + one handler thread per
/// connection, all sharing one [`SessionManager`] behind a mutex.
pub struct ServiceServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    manager: Arc<Mutex<SessionManager>>,
    accept_handle: Option<JoinHandle<()>>,
}

impl ServiceServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `manager`. When `checkpoint_dir` is set, `Checkpoint`
    /// requests also write `session_<id>.snap` files there (atomic
    /// temp-file + rename via `easybo-persist`). Without a factory,
    /// admin `OpenSession` requests are rejected; sessions are opened
    /// through the [`ServiceServer::manager`] handle instead.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(
        manager: SessionManager,
        addr: &str,
        checkpoint_dir: Option<PathBuf>,
    ) -> io::Result<Self> {
        Self::start_with_factory(manager, addr, checkpoint_dir, None)
    }

    /// Like [`ServiceServer::start`], but with a [`SessionFactory`]
    /// that serves admin `OpenSession` requests — remote admins can
    /// then mix heterogeneous algorithms over one shared worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start_with_factory(
        manager: SessionManager,
        addr: &str,
        checkpoint_dir: Option<PathBuf>,
        factory: Option<Arc<SessionFactory>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let manager = Arc::new(Mutex::new(manager));
        let accept_stop = Arc::clone(&stop);
        let accept_manager = Arc::clone(&manager);
        let accept_handle = std::thread::spawn(move || {
            let next_conn = AtomicU64::new(1);
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            for incoming in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = incoming else { continue };
                let conn = next_conn.fetch_add(1, Ordering::SeqCst);
                let stop = Arc::clone(&accept_stop);
                let manager = Arc::clone(&accept_manager);
                let dir = checkpoint_dir.clone();
                let factory = factory.clone();
                handlers.push(std::thread::spawn(move || {
                    serve_connection(
                        stream,
                        conn,
                        &manager,
                        &stop,
                        dir.as_deref(),
                        factory.as_deref(),
                    );
                    lock(&manager).drop_connection(conn);
                }));
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        Ok(ServiceServer {
            local_addr,
            stop,
            manager,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared handle to the manager — the embedding process opens
    /// sessions and collects results through this.
    pub fn manager(&self) -> Arc<Mutex<SessionManager>> {
        Arc::clone(&self.manager)
    }

    /// Stops the listener and waits for every connection handler to
    /// finish (so lease reclamation has run when this returns).
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServiceServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn lock<'m>(manager: &'m Mutex<SessionManager>) -> std::sync::MutexGuard<'m, SessionManager> {
    manager
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs one connection to completion: handshake, then a request loop
/// with duplicate-replay. Returns when the peer disconnects, a fatal
/// wire error occurs, or the server stops.
fn serve_connection(
    mut stream: TcpStream,
    conn: u64,
    manager: &Mutex<SessionManager>,
    stop: &AtomicBool,
    checkpoint_dir: Option<&std::path::Path>,
    factory: Option<&SessionFactory>,
) {
    // The poll timeout doubles as the idle heartbeat. A timeout can in
    // principle fire mid-frame and desynchronize the parser; the next
    // read then fails the magic check, the connection is dropped, and
    // lease reclamation + client retransmit recover — the trajectory
    // is transport-independent either way.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    if !handshake(&mut stream, stop) {
        return;
    }
    let mut cache: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut cache_order: VecDeque<u64> = VecDeque::new();
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(WireError::Io(e)) if is_timeout(&e) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let msg = match decode_message(&payload) {
            Ok(m) => m,
            Err(e) => {
                // Malformed message on a healthy stream: reject it,
                // keep the connection.
                let reply = Message::Error {
                    req: 0,
                    message: e.to_string(),
                };
                if write_frame(&mut stream, &encode_message(&reply)).is_err() {
                    return;
                }
                continue;
            }
        };
        let Some(req) = request_id(&msg) else {
            let reply = Message::Error {
                req: 0,
                message: format!("unexpected message {msg:?} after handshake"),
            };
            if write_frame(&mut stream, &encode_message(&reply)).is_err() {
                return;
            }
            continue;
        };
        // Duplicate (retransmitted or chaos-duplicated) request:
        // replay the cached reply without re-executing.
        if let Some(cached) = cache.get(&req) {
            if stream.write_frame_bytes(cached).is_err() {
                return;
            }
            continue;
        }
        let reply = handle_request(msg, conn, manager, stop, checkpoint_dir, factory);
        let bytes = crate::frame::encode_frame(&encode_message(&reply));
        cache.insert(req, bytes.clone());
        cache_order.push_back(req);
        if cache_order.len() > REPLY_CACHE_SIZE {
            if let Some(old) = cache_order.pop_front() {
                cache.remove(&old);
            }
        }
        if stream.write_frame_bytes(&bytes).is_err() {
            return;
        }
    }
}

/// Small extension so cached (already-framed) replies share the send
/// path with fresh ones.
trait WriteFrameBytes {
    fn write_frame_bytes(&mut self, bytes: &[u8]) -> io::Result<()>;
}

impl WriteFrameBytes for TcpStream {
    fn write_frame_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.write_all(bytes)?;
        self.flush()
    }
}

/// Reads the opening `Hello`, enforces the protocol version, and
/// acknowledges. Returns `false` when the connection should close.
fn handshake(stream: &mut TcpStream, stop: &AtomicBool) -> bool {
    let payload = loop {
        match read_frame(stream) {
            Ok(p) => break p,
            Err(WireError::Io(e)) if is_timeout(&e) => {
                if stop.load(Ordering::SeqCst) {
                    return false;
                }
            }
            Err(_) => return false,
        }
    };
    match decode_message(&payload) {
        Ok(Message::Hello { version, .. }) if version == PROTOCOL_VERSION => {
            let ack = Message::HelloAck {
                version: PROTOCOL_VERSION,
            };
            write_frame(stream, &encode_message(&ack)).is_ok()
        }
        Ok(Message::Hello { version, .. }) => {
            let err = WireError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: version,
            };
            let reply = Message::Error {
                req: 0,
                message: err.to_string(),
            };
            let _ = write_frame(stream, &encode_message(&reply));
            false
        }
        Ok(other) => {
            let reply = Message::Error {
                req: 0,
                message: format!("expected Hello, got {other:?}"),
            };
            let _ = write_frame(stream, &encode_message(&reply));
            false
        }
        Err(_) => false,
    }
}

/// The request id of a post-handshake request, or `None` for messages
/// that are not valid requests.
fn request_id(msg: &Message) -> Option<u64> {
    match msg {
        Message::AskWork { req }
        | Message::TellResult { req, .. }
        | Message::Checkpoint { req, .. }
        | Message::Evict { req, .. }
        | Message::Rehydrate { req, .. }
        | Message::Shutdown { req }
        | Message::Stats { req }
        | Message::OpenSession { req, .. } => Some(*req),
        _ => None,
    }
}

/// Executes one request against the shared manager.
fn handle_request(
    msg: Message,
    conn: u64,
    manager: &Mutex<SessionManager>,
    stop: &AtomicBool,
    checkpoint_dir: Option<&std::path::Path>,
    factory: Option<&SessionFactory>,
) -> Message {
    match msg {
        Message::AskWork { req } => {
            if stop.load(Ordering::SeqCst) {
                return Message::Bye { req };
            }
            let mut m = lock(manager);
            // Pull evicted sessions back in while residency allows;
            // without this, a fully-evicted service would starve.
            while m.resident_count() < m.resident_budget() {
                let Some(id) = m.evicted_ids().first().copied() else {
                    break;
                };
                if m.rehydrate(id).is_err() {
                    break;
                }
            }
            match m.ask(conn) {
                Some(w) => Message::Work {
                    req,
                    session: w.session,
                    task: w.task,
                    attempt: w.attempt,
                    worker: w.worker,
                    x: w.x,
                    bench: w.bench,
                },
                None if m.all_done() => Message::Bye { req },
                None => Message::NoWork { req },
            }
        }
        Message::TellResult {
            req,
            session,
            task,
            attempt,
            value,
            cost,
            outcome,
        } => {
            let accepted = lock(manager).tell(conn, session, task, attempt, value, cost, outcome);
            Message::TellAck { req, accepted }
        }
        Message::Checkpoint { req, session } => match lock(manager).checkpoint(session) {
            Ok(bytes) => {
                if let Some(dir) = checkpoint_dir {
                    let path = dir.join(format!("session_{session}.snap"));
                    if let Err(e) = write_snapshot_bytes(&path, &bytes) {
                        return Message::Error {
                            req,
                            message: format!("checkpoint write failed: {e}"),
                        };
                    }
                }
                Message::CheckpointAck {
                    req,
                    bytes: bytes.len() as u64,
                }
            }
            Err(message) => Message::Error { req, message },
        },
        Message::Evict { req, session } => match lock(manager).evict(session) {
            Ok(()) => Message::Ack { req },
            Err(message) => Message::Error { req, message },
        },
        Message::Rehydrate { req, session } => match lock(manager).rehydrate(session) {
            Ok(()) => Message::Ack { req },
            Err(message) => Message::Error { req, message },
        },
        Message::Stats { req } => {
            let m = lock(manager);
            let s = m.stats();
            Message::StatsReply {
                req,
                resident: m.resident_count(),
                evicted: m.evicted_count(),
                finished: m.finished_count(),
                asks: s.asks,
                tells: s.tells,
            }
        }
        Message::Shutdown { req } => {
            stop.store(true, Ordering::SeqCst);
            Message::Ack { req }
        }
        Message::OpenSession {
            req,
            bench,
            algo,
            seed,
            workers,
            max_evals,
            n_init,
        } => {
            let Some(factory) = factory else {
                return Message::Error {
                    req,
                    message: "this server has no session factory; \
                              open sessions through the manager handle"
                        .to_string(),
                };
            };
            let open = OpenRequest {
                bench,
                algo,
                seed,
                workers,
                max_evals,
                n_init,
            };
            match factory(&open) {
                Ok(spec) => {
                    let session = lock(manager).open_session(spec);
                    Message::SessionOpened { req, session }
                }
                Err(message) => Message::Error { req, message },
            }
        }
        other => Message::Error {
            req: 0,
            message: format!("not a request: {other:?}"),
        },
    }
}

/// Whether an I/O error is a read-timeout poll tick (platforms differ
/// on which kind a socket timeout raises).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}
