//! Seeded chaos injection for the wire transport.
//!
//! [`WireFaultPlan`] generalizes the executor's `FaultPlan` from
//! simulator faults to transport faults: dropped, duplicated, and
//! reordered frames, stalled writes, and connections killed mid-frame.
//! A [`ChaosLink`] wraps the client side of a TCP connection and
//! applies the plan to every outgoing frame. Faults are a pure
//! function of `(seed, frame counter)`, so a chaos run is exactly
//! reproducible — and because the session manager's trajectory is
//! independent of transport timing, a seeded chaos run must finish
//! byte-identical to a clean one (the `service` e2e suite asserts
//! this).
//!
//! Chaos is injected on the *client* side only. That is sufficient to
//! exercise every recovery path: a dropped or held request triggers
//! the client's retransmit, a duplicated request exercises the
//! server's reply cache, and a mid-frame kill exercises both lease
//! reclamation on the server and reconnection on the client.

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use crate::frame::{encode_frame, read_frame, WireError};

/// One transport fault, decided per outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Deliver the frame normally.
    None,
    /// Discard the frame without sending it.
    Drop,
    /// Send the frame twice back to back.
    Duplicate,
    /// Hold the frame and send it after the next one.
    Reorder,
    /// Sleep briefly before sending (a slow link, not a broken one).
    Stall,
    /// Write only half the frame, then sever the connection.
    KillMidFrame,
}

/// Seeded per-frame fault schedule for a [`ChaosLink`].
#[derive(Debug, Clone, Copy)]
pub struct WireFaultPlan {
    /// Seed mixed with the frame counter to decide each fault.
    pub seed: u64,
    /// Probability an outgoing frame is dropped.
    pub drop_rate: f64,
    /// Probability an outgoing frame is duplicated.
    pub dup_rate: f64,
    /// Probability an outgoing frame is held behind the next one.
    pub reorder_rate: f64,
    /// Probability the link stalls before a frame.
    pub stall_rate: f64,
    /// Probability the connection dies halfway through a frame.
    pub kill_rate: f64,
}

impl WireFaultPlan {
    /// A plan with every fault disabled (frames pass through).
    pub fn clean(seed: u64) -> Self {
        WireFaultPlan {
            seed,
            drop_rate: 0.0,
            dup_rate: 0.0,
            reorder_rate: 0.0,
            stall_rate: 0.0,
            kill_rate: 0.0,
        }
    }

    /// A plan where `rate` (in `[0, 1]`) of frames suffer *some*
    /// fault, spread across all five kinds. `rate = 0.3` is a very
    /// hostile link; anything above ~0.5 mostly measures retransmit
    /// throughput.
    pub fn chaos(rate: f64, seed: u64) -> Self {
        let share = rate.clamp(0.0, 1.0) / 5.0;
        WireFaultPlan {
            seed,
            drop_rate: share,
            dup_rate: share,
            reorder_rate: share,
            stall_rate: share,
            kill_rate: share,
        }
    }

    /// Decides the fault for the `counter`-th outgoing frame. Pure in
    /// `(self.seed, counter)`.
    pub fn decide(&self, counter: u64) -> WireFault {
        let u = unit(mix(self.seed ^ 0x57_49_52_45, counter));
        let mut edge = self.drop_rate;
        if u < edge {
            return WireFault::Drop;
        }
        edge += self.dup_rate;
        if u < edge {
            return WireFault::Duplicate;
        }
        edge += self.reorder_rate;
        if u < edge {
            return WireFault::Reorder;
        }
        edge += self.stall_rate;
        if u < edge {
            return WireFault::Stall;
        }
        edge += self.kill_rate;
        if u < edge {
            return WireFault::KillMidFrame;
        }
        WireFault::None
    }
}

/// splitmix64 over a seed/counter pair; kept local so the service
/// crate does not depend on the optimizer's RNG.
fn mix(seed: u64, counter: u64) -> u64 {
    let mut z = seed
        .wrapping_add(counter.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps 64 random bits to a uniform f64 in `[0, 1)`.
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// A client-side connection wrapper that applies a [`WireFaultPlan`]
/// to outgoing frames. Incoming frames pass through untouched.
pub struct ChaosLink {
    stream: TcpStream,
    plan: WireFaultPlan,
    counter: u64,
    /// A reordered frame waiting to ride behind the next send.
    held: Option<Vec<u8>>,
    dead: bool,
}

impl ChaosLink {
    /// Wraps a connected stream. `counter_start` carries the fault
    /// schedule across reconnects so a new connection does not replay
    /// the old one's faults.
    pub fn new(stream: TcpStream, plan: WireFaultPlan, counter_start: u64) -> Self {
        ChaosLink {
            stream,
            plan,
            counter: counter_start,
            held: None,
            dead: false,
        }
    }

    /// How many frames this link has decided faults for; feed it into
    /// the next link's `counter_start` after a reconnect.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Sets the read timeout used by [`ChaosLink::recv`].
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn set_read_timeout(&self, timeout: Duration) -> Result<(), WireError> {
        self.stream.set_read_timeout(Some(timeout))?;
        Ok(())
    }

    /// Sends one message payload as a frame, subject to the fault
    /// plan. A `Drop` or `Reorder` fault returns `Ok` — from the
    /// sender's view the frame left; the loss surfaces later as a
    /// read timeout and a retransmit.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the fault plan kills the connection or
    /// the socket fails.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), WireError> {
        if self.dead {
            return Err(WireError::Closed);
        }
        let frame = encode_frame(payload);
        let fault = self.plan.decide(self.counter);
        self.counter += 1;
        match fault {
            WireFault::Drop => Ok(()),
            WireFault::Reorder => {
                // Hold at most one frame; a second reorder in a row
                // degrades to a plain send so nothing is held forever.
                if self.held.is_none() {
                    self.held = Some(frame);
                    Ok(())
                } else {
                    self.push(&frame)
                }
            }
            WireFault::Duplicate => {
                self.push(&frame)?;
                self.push(&frame)
            }
            WireFault::Stall => {
                std::thread::sleep(Duration::from_millis(2));
                self.push(&frame)
            }
            WireFault::KillMidFrame => {
                let half = frame.len() / 2;
                let _ = self.stream.write_all(&frame[..half]);
                let _ = self.stream.flush();
                let _ = self.stream.shutdown(Shutdown::Both);
                self.dead = true;
                Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "chaos: connection killed mid-frame",
                )))
            }
            WireFault::None => self.push(&frame),
        }
    }

    /// Writes one already-encoded frame, flushing any held (reordered)
    /// frame *after* it — that is the reordering.
    fn push(&mut self, frame: &[u8]) -> Result<(), WireError> {
        self.stream.write_all(frame)?;
        if let Some(held) = self.held.take() {
            self.stream.write_all(&held)?;
        }
        self.stream.flush()?;
        Ok(())
    }

    /// Receives one frame (no chaos on the inbound path).
    ///
    /// # Errors
    ///
    /// Whatever [`read_frame`] reports, including timeouts as
    /// [`WireError::Io`].
    pub fn recv(&mut self) -> Result<Vec<u8>, WireError> {
        if self.dead {
            return Err(WireError::Closed);
        }
        read_frame(&mut self.stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_deterministic_and_clean_plan_is_silent() {
        let plan = WireFaultPlan::chaos(0.3, 42);
        let a: Vec<_> = (0..64).map(|i| plan.decide(i)).collect();
        let b: Vec<_> = (0..64).map(|i| plan.decide(i)).collect();
        assert_eq!(a, b);
        let clean = WireFaultPlan::clean(42);
        assert!((0..1024).all(|i| clean.decide(i) == WireFault::None));
    }

    #[test]
    fn chaos_plan_actually_injects_each_fault_kind() {
        let plan = WireFaultPlan::chaos(0.5, 7);
        let decisions: Vec<_> = (0..4096).map(|i| plan.decide(i)).collect();
        for kind in [
            WireFault::Drop,
            WireFault::Duplicate,
            WireFault::Reorder,
            WireFault::Stall,
            WireFault::KillMidFrame,
            WireFault::None,
        ] {
            assert!(
                decisions.contains(&kind),
                "fault kind {kind:?} never drawn in 4096 frames"
            );
        }
    }
}
