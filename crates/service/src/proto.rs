//! Service messages and their byte encoding.
//!
//! One [`Message`] travels per frame, encoded with the
//! `easybo-persist` [`ByteWriter`]/[`ByteReader`] codec: a one-byte
//! tag followed by the variant's fields, little-endian, `f64` as exact
//! bit patterns. The encoding is pinned by the committed
//! `tests/data/golden_wire_v2.bin` fixture; any layout change must
//! bump [`crate::PROTOCOL_VERSION`].
//!
//! Reliability contract (at-most-once effects over a lossy link):
//! every request carries a client-assigned `req` id, every reply
//! echoes it. Clients run lockstep — one outstanding request,
//! retransmitted verbatim on timeout, replies with a stale `req`
//! discarded — and the server replays its cached reply for a `req` it
//! has already served, so duplicated or retransmitted frames never
//! lease the same work twice.

use easybo_exec::EvalOutcome;
use easybo_persist::{ByteReader, ByteWriter};

use crate::frame::WireError;

/// What a connecting peer intends to do, declared in its `Hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Evaluates dispatched work items (a remote simulator slot).
    Worker,
    /// Issues session-management commands (checkpoint/evict/shutdown).
    Admin,
}

/// One service message (either direction); see the module docs for the
/// reliability contract around `req` ids.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Connection opener: protocol version + role. Must be the first
    /// message on every connection.
    Hello {
        /// The sender's [`crate::PROTOCOL_VERSION`].
        version: u32,
        /// What the peer intends to do.
        role: Role,
    },
    /// Handshake accepted.
    HelloAck {
        /// The server's protocol version.
        version: u32,
    },
    /// Worker asks for one evaluation to run.
    AskWork {
        /// Client-assigned request id.
        req: u64,
    },
    /// One leased evaluation: run `bench` at `x` and `TellResult` back.
    Work {
        /// Echoed request id.
        req: u64,
        /// Session the work belongs to.
        session: u64,
        /// Task id within the session.
        task: usize,
        /// 1-based attempt number.
        attempt: usize,
        /// Virtual worker slot the attempt is scheduled on (feeds the
        /// deterministic `AttemptContext`).
        worker: usize,
        /// The query point.
        x: Vec<f64>,
        /// Black-box name to evaluate (resolved by the worker's local
        /// registry).
        bench: String,
    },
    /// No session has leasable work right now; poll again shortly.
    NoWork {
        /// Echoed request id.
        req: u64,
    },
    /// All sessions are finished (or the server is stopping); the
    /// worker should disconnect.
    Bye {
        /// Echoed request id.
        req: u64,
    },
    /// Worker reports one finished evaluation.
    TellResult {
        /// Client-assigned request id.
        req: u64,
        /// Session the work belongs to.
        session: u64,
        /// Task id within the session.
        task: usize,
        /// 1-based attempt number.
        attempt: usize,
        /// Observed objective value.
        value: f64,
        /// Simulation cost in (virtual) seconds.
        cost: f64,
        /// How the attempt ended.
        outcome: EvalOutcome,
    },
    /// Result acknowledged. `accepted == false` means the result was
    /// stale (already resolved, or its session evicted) and was
    /// discarded — which is fine: evaluation is pure, so the authoritative
    /// copy is identical.
    TellAck {
        /// Echoed request id.
        req: u64,
        /// Whether the result was folded into the session.
        accepted: bool,
    },
    /// Admin: write a durable snapshot of `session` now.
    Checkpoint {
        /// Client-assigned request id.
        req: u64,
        /// Target session.
        session: u64,
    },
    /// Snapshot written.
    CheckpointAck {
        /// Echoed request id.
        req: u64,
        /// Snapshot size in bytes.
        bytes: u64,
    },
    /// Admin: snapshot `session` and release its resident state.
    Evict {
        /// Client-assigned request id.
        req: u64,
        /// Target session.
        session: u64,
    },
    /// Admin: rebuild an evicted `session` from its snapshot.
    Rehydrate {
        /// Client-assigned request id.
        req: u64,
        /// Target session.
        session: u64,
    },
    /// Generic success acknowledgement for admin commands.
    Ack {
        /// Echoed request id.
        req: u64,
    },
    /// Admin: stop accepting work; workers get `Bye` on their next ask.
    Shutdown {
        /// Client-assigned request id.
        req: u64,
    },
    /// Admin: report manager counters.
    Stats {
        /// Client-assigned request id.
        req: u64,
    },
    /// Manager counters (see `ManagerStats`).
    StatsReply {
        /// Echoed request id.
        req: u64,
        /// Resident (in-memory) sessions.
        resident: usize,
        /// Evicted sessions held as snapshots.
        evicted: usize,
        /// Finished sessions.
        finished: usize,
        /// Work items leased so far.
        asks: u64,
        /// Results accepted so far.
        tells: u64,
    },
    /// A request failed; `message` says why. The connection stays up.
    Error {
        /// Echoed request id (0 when the request had none).
        req: u64,
        /// Human-readable failure description.
        message: String,
    },
    /// Admin: open a new optimization session on the shared pool. The
    /// server maps `algo` (an `Algorithm` registry key) to a policy
    /// through its session factory, so heterogeneous algorithms run
    /// side by side over the same workers.
    OpenSession {
        /// Client-assigned request id.
        req: u64,
        /// Black-box name workers resolve in their local registry.
        bench: String,
        /// Algorithm registry key (e.g. `"easybo"`, `"eps-greedy"`).
        algo: String,
        /// Seed for the initial design and the policy RNG.
        seed: u64,
        /// Virtual worker pool size (the async batch parallelism).
        workers: usize,
        /// Total task budget.
        max_evals: usize,
        /// Initial design points (Latin hypercube, drawn server-side).
        n_init: usize,
    },
    /// Session opened; `session` is the id for work and admin calls.
    SessionOpened {
        /// Echoed request id.
        req: u64,
        /// The new session's id.
        session: u64,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_ASK_WORK: u8 = 3;
const TAG_WORK: u8 = 4;
const TAG_NO_WORK: u8 = 5;
const TAG_BYE: u8 = 6;
const TAG_TELL_RESULT: u8 = 7;
const TAG_TELL_ACK: u8 = 8;
const TAG_CHECKPOINT: u8 = 9;
const TAG_CHECKPOINT_ACK: u8 = 10;
const TAG_EVICT: u8 = 11;
const TAG_REHYDRATE: u8 = 12;
const TAG_ACK: u8 = 13;
const TAG_SHUTDOWN: u8 = 14;
const TAG_STATS: u8 = 15;
const TAG_STATS_REPLY: u8 = 16;
const TAG_ERROR: u8 = 17;
const TAG_OPEN_SESSION: u8 = 18;
const TAG_SESSION_OPENED: u8 = 19;

const OUTCOME_OK: u8 = 0;
const OUTCOME_FAILED: u8 = 1;
const OUTCOME_NON_FINITE: u8 = 2;
const OUTCOME_TIMED_OUT: u8 = 3;

fn put_outcome(w: &mut ByteWriter, outcome: &EvalOutcome) {
    match outcome {
        EvalOutcome::Ok => w.put_u8(OUTCOME_OK),
        EvalOutcome::Failed { reason } => {
            w.put_u8(OUTCOME_FAILED);
            w.put_str(reason);
        }
        EvalOutcome::NonFinite => w.put_u8(OUTCOME_NON_FINITE),
        EvalOutcome::TimedOut => w.put_u8(OUTCOME_TIMED_OUT),
    }
}

fn get_outcome(r: &mut ByteReader<'_>) -> Result<EvalOutcome, WireError> {
    match r.get_u8().map_err(protocol)? {
        OUTCOME_OK => Ok(EvalOutcome::Ok),
        OUTCOME_FAILED => Ok(EvalOutcome::Failed {
            reason: r.get_str().map_err(protocol)?,
        }),
        OUTCOME_NON_FINITE => Ok(EvalOutcome::NonFinite),
        OUTCOME_TIMED_OUT => Ok(EvalOutcome::TimedOut),
        tag => Err(WireError::Protocol(format!("unknown outcome tag {tag}"))),
    }
}

fn protocol(e: easybo_persist::PersistError) -> WireError {
    WireError::Protocol(e.to_string())
}

/// Encodes one message as a frame payload.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match msg {
        Message::Hello { version, role } => {
            w.put_u8(TAG_HELLO);
            w.put_u32(*version);
            w.put_u8(match role {
                Role::Worker => 0,
                Role::Admin => 1,
            });
        }
        Message::HelloAck { version } => {
            w.put_u8(TAG_HELLO_ACK);
            w.put_u32(*version);
        }
        Message::AskWork { req } => {
            w.put_u8(TAG_ASK_WORK);
            w.put_u64(*req);
        }
        Message::Work {
            req,
            session,
            task,
            attempt,
            worker,
            x,
            bench,
        } => {
            w.put_u8(TAG_WORK);
            w.put_u64(*req);
            w.put_u64(*session);
            w.put_usize(*task);
            w.put_usize(*attempt);
            w.put_usize(*worker);
            w.put_f64s(x);
            w.put_str(bench);
        }
        Message::NoWork { req } => {
            w.put_u8(TAG_NO_WORK);
            w.put_u64(*req);
        }
        Message::Bye { req } => {
            w.put_u8(TAG_BYE);
            w.put_u64(*req);
        }
        Message::TellResult {
            req,
            session,
            task,
            attempt,
            value,
            cost,
            outcome,
        } => {
            w.put_u8(TAG_TELL_RESULT);
            w.put_u64(*req);
            w.put_u64(*session);
            w.put_usize(*task);
            w.put_usize(*attempt);
            w.put_f64(*value);
            w.put_f64(*cost);
            put_outcome(&mut w, outcome);
        }
        Message::TellAck { req, accepted } => {
            w.put_u8(TAG_TELL_ACK);
            w.put_u64(*req);
            w.put_bool(*accepted);
        }
        Message::Checkpoint { req, session } => {
            w.put_u8(TAG_CHECKPOINT);
            w.put_u64(*req);
            w.put_u64(*session);
        }
        Message::CheckpointAck { req, bytes } => {
            w.put_u8(TAG_CHECKPOINT_ACK);
            w.put_u64(*req);
            w.put_u64(*bytes);
        }
        Message::Evict { req, session } => {
            w.put_u8(TAG_EVICT);
            w.put_u64(*req);
            w.put_u64(*session);
        }
        Message::Rehydrate { req, session } => {
            w.put_u8(TAG_REHYDRATE);
            w.put_u64(*req);
            w.put_u64(*session);
        }
        Message::Ack { req } => {
            w.put_u8(TAG_ACK);
            w.put_u64(*req);
        }
        Message::Shutdown { req } => {
            w.put_u8(TAG_SHUTDOWN);
            w.put_u64(*req);
        }
        Message::Stats { req } => {
            w.put_u8(TAG_STATS);
            w.put_u64(*req);
        }
        Message::StatsReply {
            req,
            resident,
            evicted,
            finished,
            asks,
            tells,
        } => {
            w.put_u8(TAG_STATS_REPLY);
            w.put_u64(*req);
            w.put_usize(*resident);
            w.put_usize(*evicted);
            w.put_usize(*finished);
            w.put_u64(*asks);
            w.put_u64(*tells);
        }
        Message::Error { req, message } => {
            w.put_u8(TAG_ERROR);
            w.put_u64(*req);
            w.put_str(message);
        }
        Message::OpenSession {
            req,
            bench,
            algo,
            seed,
            workers,
            max_evals,
            n_init,
        } => {
            w.put_u8(TAG_OPEN_SESSION);
            w.put_u64(*req);
            w.put_str(bench);
            w.put_str(algo);
            w.put_u64(*seed);
            w.put_usize(*workers);
            w.put_usize(*max_evals);
            w.put_usize(*n_init);
        }
        Message::SessionOpened { req, session } => {
            w.put_u8(TAG_SESSION_OPENED);
            w.put_u64(*req);
            w.put_u64(*session);
        }
    }
    w.into_bytes()
}

/// Decodes one frame payload into a message.
///
/// # Errors
///
/// [`WireError::Protocol`] on unknown tags, truncated fields, or
/// trailing bytes — never a panic.
pub fn decode_message(payload: &[u8]) -> Result<Message, WireError> {
    let mut r = ByteReader::new(payload);
    let tag = r.get_u8().map_err(protocol)?;
    let msg = match tag {
        TAG_HELLO => Message::Hello {
            version: r.get_u32().map_err(protocol)?,
            role: match r.get_u8().map_err(protocol)? {
                0 => Role::Worker,
                1 => Role::Admin,
                b => return Err(WireError::Protocol(format!("unknown role byte {b}"))),
            },
        },
        TAG_HELLO_ACK => Message::HelloAck {
            version: r.get_u32().map_err(protocol)?,
        },
        TAG_ASK_WORK => Message::AskWork {
            req: r.get_u64().map_err(protocol)?,
        },
        TAG_WORK => Message::Work {
            req: r.get_u64().map_err(protocol)?,
            session: r.get_u64().map_err(protocol)?,
            task: r.get_usize().map_err(protocol)?,
            attempt: r.get_usize().map_err(protocol)?,
            worker: r.get_usize().map_err(protocol)?,
            x: r.get_f64s().map_err(protocol)?,
            bench: r.get_str().map_err(protocol)?,
        },
        TAG_NO_WORK => Message::NoWork {
            req: r.get_u64().map_err(protocol)?,
        },
        TAG_BYE => Message::Bye {
            req: r.get_u64().map_err(protocol)?,
        },
        TAG_TELL_RESULT => Message::TellResult {
            req: r.get_u64().map_err(protocol)?,
            session: r.get_u64().map_err(protocol)?,
            task: r.get_usize().map_err(protocol)?,
            attempt: r.get_usize().map_err(protocol)?,
            value: r.get_f64().map_err(protocol)?,
            cost: r.get_f64().map_err(protocol)?,
            outcome: get_outcome(&mut r)?,
        },
        TAG_TELL_ACK => Message::TellAck {
            req: r.get_u64().map_err(protocol)?,
            accepted: r.get_bool().map_err(protocol)?,
        },
        TAG_CHECKPOINT => Message::Checkpoint {
            req: r.get_u64().map_err(protocol)?,
            session: r.get_u64().map_err(protocol)?,
        },
        TAG_CHECKPOINT_ACK => Message::CheckpointAck {
            req: r.get_u64().map_err(protocol)?,
            bytes: r.get_u64().map_err(protocol)?,
        },
        TAG_EVICT => Message::Evict {
            req: r.get_u64().map_err(protocol)?,
            session: r.get_u64().map_err(protocol)?,
        },
        TAG_REHYDRATE => Message::Rehydrate {
            req: r.get_u64().map_err(protocol)?,
            session: r.get_u64().map_err(protocol)?,
        },
        TAG_ACK => Message::Ack {
            req: r.get_u64().map_err(protocol)?,
        },
        TAG_SHUTDOWN => Message::Shutdown {
            req: r.get_u64().map_err(protocol)?,
        },
        TAG_STATS => Message::Stats {
            req: r.get_u64().map_err(protocol)?,
        },
        TAG_STATS_REPLY => Message::StatsReply {
            req: r.get_u64().map_err(protocol)?,
            resident: r.get_usize().map_err(protocol)?,
            evicted: r.get_usize().map_err(protocol)?,
            finished: r.get_usize().map_err(protocol)?,
            asks: r.get_u64().map_err(protocol)?,
            tells: r.get_u64().map_err(protocol)?,
        },
        TAG_ERROR => Message::Error {
            req: r.get_u64().map_err(protocol)?,
            message: r.get_str().map_err(protocol)?,
        },
        TAG_OPEN_SESSION => Message::OpenSession {
            req: r.get_u64().map_err(protocol)?,
            bench: r.get_str().map_err(protocol)?,
            algo: r.get_str().map_err(protocol)?,
            seed: r.get_u64().map_err(protocol)?,
            workers: r.get_usize().map_err(protocol)?,
            max_evals: r.get_usize().map_err(protocol)?,
            n_init: r.get_usize().map_err(protocol)?,
        },
        TAG_SESSION_OPENED => Message::SessionOpened {
            req: r.get_u64().map_err(protocol)?,
            session: r.get_u64().map_err(protocol)?,
        },
        other => return Err(WireError::Protocol(format!("unknown message tag {other}"))),
    };
    r.finish("message").map_err(protocol)?;
    Ok(msg)
}

/// One exemplar of every message variant, used by the golden wire
/// fixture and the conformance tests. Values are chosen to exercise
/// interesting bit patterns without any NaN (which `PartialEq`-based
/// assertions would trip over).
pub fn exemplar_messages() -> Vec<Message> {
    vec![
        Message::Hello {
            version: crate::PROTOCOL_VERSION,
            role: Role::Worker,
        },
        Message::HelloAck {
            version: crate::PROTOCOL_VERSION,
        },
        Message::AskWork { req: 1 },
        Message::Work {
            req: 1,
            session: 3,
            task: 7,
            attempt: 2,
            worker: 4,
            x: vec![0.125, -0.5, 1.0 / 3.0],
            bench: "two-stage-opamp".to_string(),
        },
        Message::NoWork { req: 2 },
        Message::Bye { req: 3 },
        Message::TellResult {
            req: 4,
            session: 3,
            task: 7,
            attempt: 2,
            value: -0.0625,
            cost: 38.75,
            outcome: EvalOutcome::Failed {
                reason: "injected simulator crash".to_string(),
            },
        },
        Message::TellAck {
            req: 4,
            accepted: true,
        },
        Message::Checkpoint { req: 5, session: 3 },
        Message::CheckpointAck {
            req: 5,
            bytes: 4096,
        },
        Message::Evict { req: 6, session: 3 },
        Message::Rehydrate { req: 7, session: 3 },
        Message::Ack { req: 7 },
        Message::Shutdown { req: 8 },
        Message::Stats { req: 9 },
        Message::StatsReply {
            req: 9,
            resident: 8,
            evicted: 992,
            finished: 17,
            asks: 123_456,
            tells: 123_400,
        },
        Message::Error {
            req: 10,
            message: "unknown session 99".to_string(),
        },
        Message::OpenSession {
            req: 11,
            bench: "two-stage-opamp".to_string(),
            algo: "eps-greedy".to_string(),
            seed: 42,
            workers: 4,
            max_evals: 150,
            n_init: 20,
        },
        Message::SessionOpened {
            req: 11,
            session: 3,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips() {
        for msg in exemplar_messages() {
            let bytes = encode_message(&msg);
            let back = decode_message(&bytes).unwrap();
            assert_eq!(back, msg);
            assert_eq!(encode_message(&back), bytes);
        }
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_rejected() {
        assert!(decode_message(&[200]).is_err());
        assert!(decode_message(&[]).is_err());
        let mut bytes = encode_message(&Message::AskWork { req: 5 });
        bytes.push(0);
        assert!(decode_message(&bytes).is_err(), "trailing byte undetected");
    }

    #[test]
    fn nan_values_survive_the_tell_encoding() {
        let msg = Message::TellResult {
            req: 1,
            session: 0,
            task: 0,
            attempt: 1,
            value: f64::NAN,
            cost: f64::INFINITY,
            outcome: EvalOutcome::NonFinite,
        };
        let bytes = encode_message(&msg);
        match decode_message(&bytes).unwrap() {
            Message::TellResult { value, cost, .. } => {
                assert!(value.is_nan());
                assert!(cost.is_infinite());
            }
            other => panic!("wrong variant {other:?}"),
        }
    }
}
