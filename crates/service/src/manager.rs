//! Multi-session manager: many concurrent [`SessionState`] machines
//! over one shared pool of remote workers.
//!
//! # Determinism under remote evaluation
//!
//! The in-process virtual executor evaluates eagerly: at dispatch time
//! it already knows an attempt's cost, so it inserts the worker span
//! and the finish event immediately. A remote worker only reports the
//! cost when the result comes back, so the manager runs the same
//! discrete-event loop with *deferred* results:
//!
//! - **Dispatch** registers the attempt (busy point, in-flight record,
//!   `QueryIssued`/`EvalStarted`) and reserves its event sequence
//!   number, but inserts no span and no finish event — the finish time
//!   is unknown.
//! - **Stall** — while any outstanding dispatch lacks a result, no
//!   event is popped: the missing finish time could precede (or tie
//!   with) the current heap top, so popping would commit to an order
//!   the in-process executor might not choose.
//! - **Fold** — results are folded strictly in dispatch order (span
//!   insertion order and reserved sequence numbers then match the
//!   eager executor exactly), each producing the finish event the
//!   eager executor would have pushed at dispatch time.
//!
//! Evaluation itself is pure — value, cost, and outcome are functions
//! of the query point and attempt — so *when* a result arrives, over
//! which connection, after how many retransmits, cannot change it.
//! Together these rules make the trajectory of every session a pure
//! function of its spec, byte-identical to an in-process
//! `run_session_resilient` over the same black box — which is exactly
//! what the service chaos suite asserts through a real socket pair.
//!
//! Within one session the pump is lockstep (one dispatch outstanding
//! after the initial worker fill — the price of bit-exactness when
//! costs arrive late); throughput comes from running many sessions
//! concurrently, which is the service's job. Fair-share allocation
//! leases work from the session with the fewest active leases, ties
//! broken by lowest id, so one greedy session cannot starve the rest.
//!
//! # Bounded residency
//!
//! Sessions are evicted least-recently-used to an `easybo-persist`
//! snapshot whenever more than `resident_budget` are live, and
//! rehydrated on demand — the kill/resume path PR 4 proved
//! bit-identical, reused as a memory valve.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use easybo_exec::{
    AsyncPolicy, AttemptContext, BlackBox, EvalOutcome, RetryPolicy, RunResult, SessionState, Told,
};
use easybo_persist::{decode_snapshot, encode_snapshot, RunSnapshot};
use easybo_telemetry::{Event, Telemetry};

/// Everything needed to run — and re-run, after eviction — one
/// optimization session.
pub struct SessionSpec {
    /// Black-box name workers resolve in their local registry.
    pub bench: String,
    /// Virtual worker pool size (the async batch parallelism).
    pub workers: usize,
    /// Total task budget.
    pub max_evals: usize,
    /// Initial design points.
    pub init: Vec<Vec<f64>>,
    /// Retry/backoff/timeout policy.
    pub retry: RetryPolicy,
    /// Configuration fingerprint stamped into snapshots.
    pub fingerprint: u64,
    /// Factory for the session's policy; called once at open and once
    /// per rehydration (followed by `restore_state`).
    pub policy: Box<dyn Fn() -> Box<dyn AsyncPolicy + Send> + Send>,
}

/// One leased evaluation, as handed to a remote worker.
#[derive(Debug, Clone, PartialEq)]
pub struct Work {
    /// Owning session.
    pub session: u64,
    /// Task id within the session.
    pub task: usize,
    /// 1-based attempt number.
    pub attempt: usize,
    /// Virtual worker slot (feeds the deterministic [`AttemptContext`]).
    pub worker: usize,
    /// Query point.
    pub x: Vec<f64>,
    /// Black-box name to evaluate.
    pub bench: String,
}

impl Work {
    /// Evaluates this work item against a local black box exactly the
    /// way the in-process executor would (`panics_caught = false`, so
    /// injected faults surface as failed evaluations, not panics).
    pub fn evaluate(&self, bb: &dyn BlackBox) -> easybo_exec::Evaluation {
        bb.evaluate_attempt(
            &self.x,
            AttemptContext {
                task: self.task,
                attempt: self.attempt,
                worker: self.worker,
                panics_caught: false,
            },
        )
    }
}

/// Manager counters; the session-manager invariants proptest pins the
/// conservation law
/// `asks == tells + reclaimed + active_leases`
/// (every granted lease is retired exactly once — by the result that
/// lands it, by its connection dying, or by its session being evicted
/// — or is still active).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Leases granted ("asks" served with work).
    pub asks: u64,
    /// Leases retired by an accepted result.
    pub tells: u64,
    /// Leases retired by connection death or eviction.
    pub reclaimed: u64,
    /// Results accepted, including late ones whose lease was already
    /// reclaimed (`accepted >= tells`).
    pub accepted: u64,
    /// Results rejected as stale (unknown dispatch, evicted or
    /// finished session, duplicate delivery).
    pub stale_tells: u64,
    /// Sessions evicted to snapshots.
    pub evictions: u64,
    /// Sessions rebuilt from snapshots.
    pub rehydrations: u64,
}

/// Heap entry mirroring the virtual executor's event ordering:
/// earliest time first, ties broken by worker, then task, then the
/// reserved sequence number.
#[derive(Debug)]
struct PumpEvent {
    time: f64,
    worker: usize,
    task: usize,
    seq: usize,
    kind: PumpEventKind,
}

#[derive(Debug)]
enum PumpEventKind {
    Finish {
        value: f64,
        attempt: usize,
        outcome: EvalOutcome,
    },
    Retry,
}

impl PartialEq for PumpEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for PumpEvent {}
impl PartialOrd for PumpEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PumpEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then(other.worker.cmp(&self.worker))
            .then(other.task.cmp(&self.task))
            .then(other.seq.cmp(&self.seq))
    }
}

/// One dispatched attempt awaiting its remote result.
#[derive(Debug)]
struct Dispatch {
    task: usize,
    attempt: usize,
    worker: usize,
    /// Virtual start time (the event time of the pop that issued it).
    start: f64,
    x: Vec<f64>,
    /// Sequence number reserved at dispatch, used by the finish event.
    seq: usize,
    /// Connection currently holding the lease.
    lease: Option<u64>,
    /// `(value, cost, outcome)` once a worker reported back.
    result: Option<(f64, f64, EvalOutcome)>,
}

/// A live session: state machine, policy, event heap, and the queue of
/// outstanding dispatches (dispatch order, folded from the front).
struct Resident {
    session: SessionState,
    policy: Box<dyn AsyncPolicy + Send>,
    heap: BinaryHeap<PumpEvent>,
    seq: usize,
    outstanding: VecDeque<Dispatch>,
    last_touch: u64,
}

impl Resident {
    fn done(&self) -> bool {
        self.heap.is_empty() && self.outstanding.is_empty()
    }
}

/// Drives many concurrent optimization sessions over a shared remote
/// worker pool. See the module docs for the determinism and residency
/// contracts.
pub struct SessionManager {
    specs: BTreeMap<u64, SessionSpec>,
    resident: BTreeMap<u64, Resident>,
    /// Evicted sessions as encoded `easybo-persist` snapshot bytes.
    evicted: BTreeMap<u64, Vec<u8>>,
    finished: BTreeMap<u64, RunResult>,
    next_id: u64,
    touch: u64,
    resident_budget: usize,
    stats: ManagerStats,
    telemetry: Telemetry,
}

impl SessionManager {
    /// A manager keeping at most `resident_budget` sessions in memory
    /// (older ones are snapshotted out LRU). Telemetry is disabled;
    /// attach one with [`SessionManager::with_telemetry`].
    ///
    /// # Panics
    ///
    /// Panics if `resident_budget == 0`.
    pub fn new(resident_budget: usize) -> Self {
        assert!(resident_budget > 0, "need room for at least one session");
        SessionManager {
            specs: BTreeMap::new(),
            resident: BTreeMap::new(),
            evicted: BTreeMap::new(),
            finished: BTreeMap::new(),
            next_id: 0,
            touch: 0,
            resident_budget,
            stats: ManagerStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle (service counters plus the
    /// `SessionEvicted`/`SessionRehydrated` events).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Opens a new session and returns its id. The initial worker fill
    /// is dispatched immediately; if opening pushes residency over
    /// budget, the least-recently-used *other* session is evicted.
    pub fn open_session(&mut self, spec: SessionSpec) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let session = SessionState::new(spec.workers, spec.max_evals, &spec.init);
        let policy = (spec.policy)();
        let workers = spec.workers;
        self.specs.insert(id, spec);
        let mut r = Resident {
            session,
            policy,
            heap: BinaryHeap::new(),
            seq: 0,
            outstanding: VecDeque::new(),
            last_touch: 0,
        };
        // Mirror the fresh-run branch of the in-process driver: fill
        // every virtual worker at t = 0 while budget remains.
        for w in 0..workers {
            if r.session.issued() >= r.session.max_evals() {
                break;
            }
            self.telemetry.set_now(0.0);
            let Some(s) = r.session.ask_traced(r.policy.as_mut(), &self.telemetry) else {
                break;
            };
            Self::dispatch(&self.telemetry, &mut r, w, 0.0, s.task, s.x, s.attempt);
        }
        self.resident.insert(id, r);
        self.touch_session(id);
        self.finalize_if_done(id);
        self.enforce_budget(Some(id));
        id
    }

    /// Registers an attempt and reserves its event sequence number;
    /// the span and finish event wait for the result (see module docs).
    fn dispatch(
        telemetry: &Telemetry,
        r: &mut Resident,
        worker: usize,
        now: f64,
        task: usize,
        x: Vec<f64>,
        attempt: usize,
    ) {
        telemetry.set_now(now);
        let _span = telemetry.span("dispatch");
        telemetry.emit_at_with(now, || Event::QueryIssued { task, worker });
        telemetry.emit_at_with(now, || Event::EvalStarted { task, worker });
        r.session
            .begin(task, attempt, x.clone(), worker, Some(now), f64::NAN);
        let seq = r.seq;
        r.seq += 1;
        r.outstanding.push_back(Dispatch {
            task,
            attempt,
            worker,
            start: now,
            x,
            seq,
            lease: None,
            result: None,
        });
    }

    /// Leases one work item to connection `conn`, fair-share across
    /// sessions: fewest active leases first, lowest id on ties.
    /// Returns `None` when no session has leasable work (all
    /// outstanding dispatches are leased, stalled, or resident
    /// sessions are drained).
    pub fn ask(&mut self, conn: u64) -> Option<Work> {
        let pick = self
            .resident
            .iter()
            .filter(|(_, r)| {
                r.outstanding
                    .iter()
                    .any(|d| d.lease.is_none() && d.result.is_none())
            })
            .min_by_key(|(id, r)| {
                let leased = r.outstanding.iter().filter(|d| d.lease.is_some()).count();
                (leased, **id)
            })
            .map(|(id, _)| *id)?;
        let bench = self.specs[&pick].bench.clone();
        let r = self.resident.get_mut(&pick).expect("picked resident");
        let d = r
            .outstanding
            .iter_mut()
            .find(|d| d.lease.is_none() && d.result.is_none())
            .expect("picked session has leasable work");
        d.lease = Some(conn);
        let work = Work {
            session: pick,
            task: d.task,
            attempt: d.attempt,
            worker: d.worker,
            x: d.x.clone(),
            bench,
        };
        self.stats.asks += 1;
        self.telemetry.incr("service_asks", 1);
        self.touch_session(pick);
        Some(work)
    }

    /// Accepts one remote result. Returns whether it was folded into
    /// the session (`false` = stale: unknown or already-resolved
    /// dispatch, evicted/finished session, duplicate delivery).
    ///
    /// Results are matched by `(session, task, attempt)` regardless of
    /// which connection leased the dispatch — a worker whose
    /// connection died mid-report can reconnect and land the same
    /// result, and evaluation purity makes the copies identical.
    #[allow(clippy::too_many_arguments)]
    pub fn tell(
        &mut self,
        _conn: u64,
        session: u64,
        task: usize,
        attempt: usize,
        value: f64,
        cost: f64,
        outcome: EvalOutcome,
    ) -> bool {
        let Some(r) = self.resident.get_mut(&session) else {
            self.stats.stale_tells += 1;
            self.telemetry.incr("service_stale_tells", 1);
            return false;
        };
        let Some(d) = r
            .outstanding
            .iter_mut()
            .find(|d| d.task == task && d.attempt == attempt && d.result.is_none())
        else {
            self.stats.stale_tells += 1;
            self.telemetry.incr("service_stale_tells", 1);
            return false;
        };
        if d.lease.take().is_some() {
            self.stats.tells += 1;
        }
        d.result = Some((value, cost, outcome));
        self.stats.accepted += 1;
        self.telemetry.incr("service_tells", 1);
        self.touch_session(session);
        self.pump(session);
        self.finalize_if_done(session);
        true
    }

    /// Reclaims every lease held by a dead connection; the work items
    /// go back to the unleased pool and are re-leased in dispatch
    /// order to the next asker.
    pub fn drop_connection(&mut self, conn: u64) {
        let mut reclaimed = 0u64;
        for r in self.resident.values_mut() {
            for d in r.outstanding.iter_mut() {
                if d.lease == Some(conn) && d.result.is_none() {
                    d.lease = None;
                    reclaimed += 1;
                }
            }
        }
        self.stats.reclaimed += reclaimed;
        if reclaimed > 0 {
            self.telemetry.incr("service_leases_reclaimed", reclaimed);
        }
    }

    /// Runs the deferred-result discrete-event loop for one session
    /// until it stalls on an unresolved dispatch or drains.
    fn pump(&mut self, id: u64) {
        let Some(r) = self.resident.get_mut(&id) else {
            return;
        };
        let spec = &self.specs[&id];
        loop {
            // Fold resolved dispatches from the front — strictly in
            // dispatch order, so span insertion matches the eager
            // executor.
            while let Some(front) = r.outstanding.front() {
                let Some((value, mut cost, mut outcome)) = front.result.clone() else {
                    break;
                };
                let d = r.outstanding.pop_front().expect("front exists");
                if let Some(deadline) = spec.retry.timeout {
                    if cost > deadline {
                        cost = deadline;
                        outcome = EvalOutcome::TimedOut;
                    }
                }
                let finish = d.start + cost;
                r.session
                    .add_span(d.worker, d.task, d.start, finish, !outcome.is_ok());
                r.heap.push(PumpEvent {
                    time: finish,
                    worker: d.worker,
                    task: d.task,
                    seq: d.seq,
                    kind: PumpEventKind::Finish {
                        value,
                        attempt: d.attempt,
                        outcome,
                    },
                });
            }
            // Stall: an unresolved dispatch could finish before (or
            // tie with) the heap top, so popping now could diverge
            // from the in-process event order.
            if !r.outstanding.is_empty() {
                return;
            }
            let Some(ev) = r.heap.pop() else {
                return;
            };
            r.session.set_clock(ev.time);
            match ev.kind {
                PumpEventKind::Finish {
                    value,
                    attempt,
                    outcome,
                } => {
                    let Some(inf) = r.session.take_inflight(ev.task) else {
                        continue;
                    };
                    self.telemetry.set_now(ev.time);
                    match r.session.tell(
                        &spec.retry,
                        &self.telemetry,
                        ev.time,
                        ev.worker,
                        ev.task,
                        inf.x,
                        value,
                        attempt,
                        outcome,
                    ) {
                        Told::Committed | Told::Dropped => {
                            self.telemetry.set_now(ev.time);
                            if let Some(s) =
                                r.session.ask_traced(r.policy.as_mut(), &self.telemetry)
                            {
                                Self::dispatch(
                                    &self.telemetry,
                                    r,
                                    ev.worker,
                                    ev.time,
                                    s.task,
                                    s.x,
                                    s.attempt,
                                );
                            }
                        }
                        Told::Backoff { due } => {
                            let seq = r.seq;
                            r.seq += 1;
                            r.heap.push(PumpEvent {
                                time: due,
                                worker: ev.worker,
                                task: ev.task,
                                seq,
                                kind: PumpEventKind::Retry,
                            });
                        }
                    }
                }
                PumpEventKind::Retry => {
                    if let Some(b) = r.session.take_backoff(ev.task) {
                        self.telemetry.set_now(ev.time);
                        let _span = self.telemetry.span("retry_backoff");
                        Self::dispatch(
                            &self.telemetry,
                            r,
                            ev.worker,
                            ev.time,
                            ev.task,
                            b.x,
                            b.attempt,
                        );
                    }
                }
            }
        }
    }

    /// Moves a drained session from resident to finished.
    fn finalize_if_done(&mut self, id: u64) {
        let done = self.resident.get(&id).is_some_and(Resident::done);
        if done {
            let r = self.resident.remove(&id).expect("checked above");
            self.finished.insert(id, r.session.into_result());
            self.telemetry.incr("service_sessions_finished", 1);
        }
    }

    /// Encodes a session's current state as `easybo-persist` snapshot
    /// bytes (works on resident and evicted sessions alike).
    ///
    /// # Errors
    ///
    /// Describes the failure for unknown or finished sessions.
    pub fn checkpoint(&mut self, id: u64) -> Result<Vec<u8>, String> {
        if let Some(bytes) = self.evicted.get(&id) {
            return Ok(bytes.clone());
        }
        let Some(r) = self.resident.get(&id) else {
            return Err(format!("session {id} is not live (unknown or finished)"));
        };
        let spec = &self.specs[&id];
        let snap = RunSnapshot {
            config_fingerprint: spec.fingerprint,
            session: r.session.to_parts(),
            policy: r.policy.snapshot_state(),
        };
        self.touch_session(id);
        Ok(encode_snapshot(&snap))
    }

    /// Snapshots a resident session and releases its in-memory state;
    /// leases on its outstanding work are reclaimed (late results for
    /// them are rejected as stale, and rehydration re-dispatches the
    /// same attempts — purity makes the replay identical).
    ///
    /// # Errors
    ///
    /// Describes the failure for unknown, finished, or already-evicted
    /// sessions.
    pub fn evict(&mut self, id: u64) -> Result<(), String> {
        if self.evicted.contains_key(&id) {
            return Err(format!("session {id} is already evicted"));
        }
        let bytes = self.checkpoint(id)?;
        let r = self.resident.remove(&id).expect("checkpoint verified");
        let reclaimed = r
            .outstanding
            .iter()
            .filter(|d| d.lease.is_some() && d.result.is_none())
            .count() as u64;
        self.stats.reclaimed += reclaimed;
        self.evicted.insert(id, bytes);
        self.stats.evictions += 1;
        self.telemetry.incr("service_evictions", 1);
        self.telemetry.emit_with(|| Event::SessionEvicted {
            session: id,
            resident: self.resident.len(),
        });
        Ok(())
    }

    /// Rebuilds an evicted session from its snapshot: restores the
    /// session and policy state, re-dispatches every interrupted
    /// attempt at its recorded worker/start, and turns pending
    /// backoffs into retry events — the same continuation the
    /// checkpoint/resume path runs in process.
    ///
    /// # Errors
    ///
    /// Describes the failure for sessions that are not evicted or
    /// whose snapshot no longer decodes.
    pub fn rehydrate(&mut self, id: u64) -> Result<(), String> {
        let Some(bytes) = self.evicted.remove(&id) else {
            return Err(format!("session {id} is not evicted"));
        };
        let snap = match decode_snapshot(&bytes) {
            Ok(snap) => snap,
            Err(e) => {
                self.evicted.insert(id, bytes);
                return Err(format!("snapshot for session {id} is corrupt: {e}"));
            }
        };
        let spec = &self.specs[&id];
        let mut policy = (spec.policy)();
        if let Some(blob) = &snap.policy {
            if let Err(e) = policy.restore_state(blob) {
                self.evicted.insert(id, bytes);
                return Err(format!("policy restore for session {id} failed: {e}"));
            }
        }
        let session = SessionState::from_parts(snap.session);
        let workers = session.workers();
        let clock = session.clock();
        let mut r = Resident {
            session,
            policy,
            heap: BinaryHeap::new(),
            seq: 0,
            outstanding: VecDeque::new(),
            last_touch: 0,
        };
        // Mirror the resume branch of the in-process driver: re-issue
        // in-flight attempts first (they take the low sequence
        // numbers), then re-arm backoffs as retry events.
        let inflight = r.session.drain_inflight();
        let inflight_count = inflight.len();
        for inf in inflight {
            let (worker, start) = inf.started.unwrap_or((inf.task % workers, clock));
            Self::dispatch(
                &self.telemetry,
                &mut r,
                worker,
                start,
                inf.task,
                inf.x,
                inf.attempt,
            );
        }
        let waiting: Vec<(f64, usize, usize)> = r
            .session
            .backoffs()
            .iter()
            .map(|b| (b.due, b.worker, b.task))
            .collect();
        for (due, worker, task) in waiting {
            let seq = r.seq;
            r.seq += 1;
            r.heap.push(PumpEvent {
                time: due,
                worker,
                task,
                seq,
                kind: PumpEventKind::Retry,
            });
        }
        self.resident.insert(id, r);
        self.stats.rehydrations += 1;
        self.telemetry.incr("service_rehydrations", 1);
        self.telemetry.emit_with(|| Event::SessionRehydrated {
            session: id,
            inflight: inflight_count,
        });
        self.touch_session(id);
        // A snapshot taken after the final observation rehydrates into
        // an already-drained session.
        self.pump(id);
        self.finalize_if_done(id);
        self.enforce_budget(Some(id));
        Ok(())
    }

    /// Evicts least-recently-used sessions until residency fits the
    /// budget, never evicting `protect` (the session that just became
    /// active).
    fn enforce_budget(&mut self, protect: Option<u64>) {
        while self.resident.len() > self.resident_budget {
            let victim = self
                .resident
                .iter()
                .filter(|(id, _)| Some(**id) != protect)
                .min_by_key(|(id, r)| (r.last_touch, **id))
                .map(|(id, _)| *id);
            let Some(victim) = victim else {
                return;
            };
            self.evict(victim)
                .expect("resident non-protected session must evict");
        }
    }

    fn touch_session(&mut self, id: u64) {
        self.touch += 1;
        let touch = self.touch;
        if let Some(r) = self.resident.get_mut(&id) {
            r.last_touch = touch;
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Number of sessions currently resident in memory (always at most
    /// the budget after any public call returns).
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Number of sessions held only as snapshots.
    pub fn evicted_count(&self) -> usize {
        self.evicted.len()
    }

    /// Number of finished sessions whose results await collection.
    pub fn finished_count(&self) -> usize {
        self.finished.len()
    }

    /// Leases currently held by connections.
    pub fn active_leases(&self) -> usize {
        self.resident
            .values()
            .flat_map(|r| r.outstanding.iter())
            .filter(|d| d.lease.is_some() && d.result.is_none())
            .count()
    }

    /// The configured residency budget.
    pub fn resident_budget(&self) -> usize {
        self.resident_budget
    }

    /// Whether every opened session has finished.
    pub fn all_done(&self) -> bool {
        self.resident.is_empty() && self.evicted.is_empty()
    }

    /// Ids of sessions that are evicted but not finished (callers
    /// rehydrate these to make progress once residency frees up).
    pub fn evicted_ids(&self) -> Vec<u64> {
        self.evicted.keys().copied().collect()
    }

    /// Removes and returns a finished session's result.
    pub fn take_result(&mut self, id: u64) -> Option<RunResult> {
        self.finished.remove(&id)
    }
}
