//! Length-prefixed, checksummed wire frames.
//!
//! Every message on a service connection travels inside one frame:
//!
//! ```text
//! +----------+----------+----------+-----------------+
//! | magic u32| len  u32 | crc  u32 | payload (len B) |
//! +----------+----------+----------+-----------------+
//! ```
//!
//! All integers are little-endian (the `easybo-persist` codec
//! convention). `crc` is the CRC-32 of the payload alone, so any bit
//! flip in the payload — and, via the magic and the length bound, any
//! damage to the header — surfaces as a structured [`WireError`]
//! instead of a panic, a hang, or a silently wrong message. Frames are
//! self-delimiting, which is what lets the chaos injector drop,
//! duplicate, and reorder whole messages without desynchronizing the
//! byte stream parser on the healthy side.

use std::io::{Read, Write};

use easybo_persist::crc32;

/// Frame magic: `"EZBW"` little-endian. A connection byte that is not
/// part of a well-formed frame fails here first.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"EZBW");

/// Hard cap on payload size. Service messages are tiny (a query point
/// is a few hundred bytes); the cap turns corrupt length headers into
/// [`WireError::TooLarge`] before any allocation.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// Wire protocol version, negotiated by the `Hello` handshake and
/// pinned by the committed `tests/data/golden_wire_v2.bin` fixture.
/// Bump it on any frame or message layout change (v2 added the
/// `OpenSession`/`SessionOpened` admin pair).
pub const PROTOCOL_VERSION: u32 = 2;

/// Structured failure of frame or message decoding. Never panics,
/// never hangs: every malformed input maps to one of these.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed or closed mid-frame.
    Io(std::io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The frame header did not start with [`FRAME_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: u32,
    },
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    TooLarge {
        /// The declared length.
        len: usize,
    },
    /// The payload failed its CRC-32 check.
    BadCrc {
        /// Checksum declared by the header.
        expected: u32,
        /// Checksum of the payload actually received.
        actual: u32,
    },
    /// The payload decoded to a malformed or unknown message.
    Protocol(String),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our [`PROTOCOL_VERSION`].
        ours: u32,
        /// The version the peer announced.
        theirs: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::BadMagic { found } => {
                write!(
                    f,
                    "bad frame magic {found:#010x} (expected {FRAME_MAGIC:#010x})"
                )
            }
            WireError::TooLarge { len } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {MAX_FRAME_LEN} byte cap"
                )
            }
            WireError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "frame crc mismatch: header {expected:#010x}, payload {actual:#010x}"
                )
            }
            WireError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(
                    f,
                    "protocol version mismatch: we speak v{ours}, peer speaks v{theirs}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// Whether the error means the connection is unusable (as opposed
    /// to one rejected message on a healthy stream).
    pub fn is_fatal(&self) -> bool {
        !matches!(self, WireError::Protocol(_))
    }
}

/// Encodes `payload` as one self-delimiting frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes one frame from the start of `buf`, returning the payload
/// and the number of bytes consumed.
///
/// # Errors
///
/// [`WireError::Closed`] on an empty buffer, [`WireError::Io`] (kind
/// `UnexpectedEof`) on a truncated frame, and the structured header /
/// checksum errors on damage.
pub fn decode_frame(buf: &[u8]) -> Result<(Vec<u8>, usize), WireError> {
    if buf.is_empty() {
        return Err(WireError::Closed);
    }
    if buf.len() < 12 {
        return Err(truncated("frame header"));
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let len = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::TooLarge { len });
    }
    let expected = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    if buf.len() < 12 + len {
        return Err(truncated("frame payload"));
    }
    let payload = buf[12..12 + len].to_vec();
    let actual = crc32(&payload);
    if actual != expected {
        return Err(WireError::BadCrc { expected, actual });
    }
    Ok((payload, 12 + len))
}

/// Writes one frame to a stream.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    w.write_all(&encode_frame(payload))?;
    w.flush()?;
    Ok(())
}

/// Reads one complete frame from a stream, validating magic, length
/// bound, and checksum.
///
/// # Errors
///
/// [`WireError::Closed`] when the stream ends cleanly before a frame
/// starts; the structured header/checksum errors on damage; I/O errors
/// (including read timeouts) as [`WireError::Io`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 12];
    let mut got = 0;
    while got < header.len() {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Err(WireError::Closed);
            }
            return Err(truncated("frame header"));
        }
        got += n;
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::TooLarge { len });
    }
    let expected = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        let n = r.read(&mut payload[got..])?;
        if n == 0 {
            return Err(truncated("frame payload"));
        }
        got += n;
    }
    let actual = crc32(&payload);
    if actual != expected {
        return Err(WireError::BadCrc { expected, actual });
    }
    Ok(payload)
}

fn truncated(what: &str) -> WireError {
    WireError::Io(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        format!("truncated {what}"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], b"x", b"hello frame", &[0u8; 4096]] {
            let framed = encode_frame(payload);
            let (back, consumed) = decode_frame(&framed).unwrap();
            assert_eq!(back, payload);
            assert_eq!(consumed, framed.len());
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut framed = encode_frame(b"abc");
        framed[0] ^= 0xff;
        assert!(matches!(
            decode_frame(&framed),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn payload_bit_flip_fails_crc() {
        let mut framed = encode_frame(b"sensitive");
        framed[14] ^= 0x01;
        assert!(matches!(
            decode_frame(&framed),
            Err(WireError::BadCrc { .. })
        ));
    }

    #[test]
    fn truncation_is_reported_not_panicked() {
        let framed = encode_frame(b"whole message");
        for cut in [0, 3, 11, 12, framed.len() - 1] {
            let r = decode_frame(&framed[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn huge_length_headers_fail_before_allocating() {
        let mut framed = encode_frame(b"");
        framed[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&framed),
            Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn stream_reader_matches_buffer_decoder() {
        let framed = encode_frame(b"stream payload");
        let mut cursor = std::io::Cursor::new(framed.clone());
        assert_eq!(read_frame(&mut cursor).unwrap(), b"stream payload");
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty), Err(WireError::Closed)));
    }
}
