//! # easybo-service
//!
//! A std-only TCP optimization service for EasyBO: many concurrent
//! asynchronous-BO sessions served over a length-prefixed, checksummed
//! wire protocol to a pool of remote simulator workers.
//!
//! The layers, bottom up:
//!
//! - [`frame`] — self-delimiting frames (`magic | len | crc32 |
//!   payload`) with structured [`WireError`]s; malformed bytes never
//!   panic or hang the parser.
//! - [`proto`] — the [`Message`] set (versioned `Hello` handshake,
//!   ask/tell work exchange, checkpoint/evict/rehydrate/shutdown
//!   admin), encoded with the `easybo-persist` byte codec and pinned
//!   by a committed golden fixture.
//! - [`chaos`] — a seeded [`WireFaultPlan`] dropping, duplicating,
//!   reordering, stalling, and mid-frame-killing client frames, for
//!   chaos-testing the transport.
//! - [`manager`] — the [`SessionManager`]: many [`SessionState`]
//!   machines pumped by a deferred-result discrete-event loop that is
//!   *byte-identical* to the in-process virtual executor, with
//!   fair-share work leasing, at-most-once result folding, and LRU
//!   eviction to `easybo-persist` snapshots so resident memory stays
//!   bounded no matter how many sessions are open.
//! - [`server`] / [`client`] — the TCP ends: lockstep retransmitting
//!   RPC with a server-side reply cache, so every recovery path
//!   (dropped frame, duplicated frame, dead connection) converges to
//!   exactly-once work effects.
//!
//! The service's core guarantee, enforced end to end by the `service`
//! test suite: a seeded chaos run through a real socket pair finishes
//! with the same trace, dataset, and schedule — byte for byte — as a
//! clean in-process `run_session_resilient` over the same black box.
//!
//! [`SessionState`]: easybo_exec::SessionState

pub mod chaos;
pub mod client;
pub mod frame;
pub mod manager;
pub mod proto;
pub mod server;

pub use chaos::{ChaosLink, WireFault, WireFaultPlan};
pub use client::{ServiceClient, WorkerClient, WorkerSummary};
pub use frame::{
    decode_frame, encode_frame, read_frame, write_frame, WireError, FRAME_MAGIC, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
pub use manager::{ManagerStats, SessionManager, SessionSpec, Work};
pub use proto::{decode_message, encode_message, exemplar_messages, Message, Role};
pub use server::{OpenRequest, ServiceServer, SessionFactory};
