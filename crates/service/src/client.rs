//! Client side of the wire protocol: a lockstep RPC core, the worker
//! loop that evaluates leased work against a local black-box registry,
//! and thin admin commands.
//!
//! The RPC core keeps exactly one request outstanding. Every request
//! carries a fresh id; on a read timeout the request is retransmitted
//! verbatim, replies whose id does not match are discarded (they are
//! replay-cache echoes of earlier duplicates), and a dead connection
//! is rebuilt with a fresh `Hello` handshake before resending. Those
//! three rules, against the server's reply cache, give at-most-once
//! request effects over a link that drops, duplicates, reorders, and
//! kills frames.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use easybo_exec::BlackBox;

use crate::chaos::{ChaosLink, WireFaultPlan};
use crate::frame::{WireError, PROTOCOL_VERSION};
use crate::proto::{decode_message, encode_message, Message, Role};

/// How long to wait for a reply before retransmitting the request.
const REPLY_TIMEOUT: Duration = Duration::from_millis(40);

/// Send/receive attempts per request before giving up. Generous: at a
/// 30% chaos rate the odds of this many consecutive losses are
/// negligible, while a genuinely dead server still fails fast enough
/// for tests.
const MAX_ATTEMPTS: u32 = 500;

/// Lockstep RPC connection to a [`crate::ServiceServer`].
pub struct ServiceClient {
    addr: SocketAddr,
    role: Role,
    plan: WireFaultPlan,
    link: Option<ChaosLink>,
    /// Fault-schedule position, carried across reconnects.
    chaos_counter: u64,
    next_req: u64,
}

impl ServiceClient {
    /// A client for `addr` with a clean (fault-free) link.
    pub fn connect(addr: SocketAddr, role: Role) -> Self {
        Self::connect_with_chaos(addr, role, WireFaultPlan::clean(0))
    }

    /// A client whose outgoing frames suffer the given fault plan.
    pub fn connect_with_chaos(addr: SocketAddr, role: Role, plan: WireFaultPlan) -> Self {
        ServiceClient {
            addr,
            role,
            plan,
            link: None,
            chaos_counter: 0,
            next_req: 1,
        }
    }

    /// Allocates the next request id.
    fn fresh_req(&mut self) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        req
    }

    /// Ensures a live, handshaken link, reconnecting as needed.
    fn ensure_link(&mut self) -> Result<&mut ChaosLink, WireError> {
        if self.link.is_none() {
            let link = self.try_handshake()?;
            self.link = Some(link);
        }
        Ok(self.link.as_mut().expect("just ensured"))
    }

    /// Opens a connection and performs the `Hello` handshake. The
    /// handshake rides the chaos link too; whatever happens, the
    /// fault-schedule position is saved before returning so a retried
    /// handshake draws *new* faults instead of replaying the one that
    /// just killed it.
    fn try_handshake(&mut self) -> Result<ChaosLink, WireError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        let mut link = ChaosLink::new(stream, self.plan, self.chaos_counter);
        link.set_read_timeout(REPLY_TIMEOUT)?;
        let result = Self::handshake_on(&mut link, self.role);
        self.chaos_counter = link.counter();
        result.map(|()| link)
    }

    fn handshake_on(link: &mut ChaosLink, role: Role) -> Result<(), WireError> {
        let hello = Message::Hello {
            version: PROTOCOL_VERSION,
            role,
        };
        link.send(&encode_message(&hello))?;
        match decode_message(&link.recv()?)? {
            Message::HelloAck { .. } => Ok(()),
            Message::Error { message, .. } => Err(WireError::Protocol(message)),
            other => Err(WireError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    /// Tears down the link, remembering the chaos-schedule position.
    fn drop_link(&mut self) {
        if let Some(link) = self.link.take() {
            self.chaos_counter = link.counter();
        }
    }

    /// Sends `request` (which must carry id `req`) until the matching
    /// reply arrives: retransmit on timeout, discard mismatched
    /// replies, reconnect on dead links.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] with context after [`MAX_ATTEMPTS`]
    /// consecutive failures (server unreachable or permanently
    /// rejecting the handshake).
    pub fn rpc(&mut self, req: u64, request: &Message) -> Result<Message, WireError> {
        let payload = encode_message(request);
        let mut sent = false;
        for _ in 0..MAX_ATTEMPTS {
            let link = match self.ensure_link() {
                Ok(link) => link,
                Err(e) if e.is_fatal() => {
                    self.drop_link();
                    sent = false;
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
                Err(e) => return Err(e),
            };
            if !sent {
                match link.send(&payload) {
                    Ok(()) => sent = true,
                    Err(_) => {
                        self.drop_link();
                        continue;
                    }
                }
            }
            match link.recv() {
                Ok(bytes) => match decode_message(&bytes) {
                    Ok(Message::Error { req: r, message }) if r == req => {
                        self.sync_counter();
                        return Err(WireError::Protocol(message));
                    }
                    Ok(reply) if reply_req(&reply) == Some(req) => {
                        self.sync_counter();
                        return Ok(reply);
                    }
                    // A stale reply (replayed duplicate of an earlier
                    // request) or an unmatched error: discard and keep
                    // reading.
                    Ok(_) => continue,
                    Err(e) if e.is_fatal() => {
                        self.drop_link();
                        sent = false;
                        continue;
                    }
                    Err(_) => continue,
                },
                Err(WireError::Io(e)) if is_timeout(&e) => {
                    // No reply yet: retransmit the same request; the
                    // server's reply cache absorbs the duplicate if
                    // the original actually arrived.
                    sent = false;
                    continue;
                }
                Err(_) => {
                    self.drop_link();
                    sent = false;
                    continue;
                }
            }
        }
        Err(WireError::Protocol(format!(
            "request {req} got no reply after {MAX_ATTEMPTS} attempts"
        )))
    }

    fn sync_counter(&mut self) {
        if let Some(link) = &self.link {
            self.chaos_counter = link.counter();
        }
    }

    /// Admin: snapshot a session durably on the server.
    ///
    /// # Errors
    ///
    /// Server-side failures arrive as [`WireError::Protocol`].
    pub fn checkpoint(&mut self, session: u64) -> Result<u64, WireError> {
        let req = self.fresh_req();
        match self.rpc(req, &Message::Checkpoint { req, session })? {
            Message::CheckpointAck { bytes, .. } => Ok(bytes),
            other => Err(unexpected("CheckpointAck", &other)),
        }
    }

    /// Admin: open a new optimization session on the server's shared
    /// worker pool. The server's session factory maps `algo` (an
    /// `Algorithm` registry key) to a policy, so different clients can
    /// run heterogeneous algorithms side by side. Returns the new
    /// session id.
    ///
    /// # Errors
    ///
    /// Server-side failures (no factory configured, unknown bench or
    /// algorithm key) arrive as [`WireError::Protocol`].
    #[allow(clippy::too_many_arguments)]
    pub fn open_session(
        &mut self,
        bench: &str,
        algo: &str,
        seed: u64,
        workers: usize,
        max_evals: usize,
        n_init: usize,
    ) -> Result<u64, WireError> {
        let req = self.fresh_req();
        let open = Message::OpenSession {
            req,
            bench: bench.to_string(),
            algo: algo.to_string(),
            seed,
            workers,
            max_evals,
            n_init,
        };
        match self.rpc(req, &open)? {
            Message::SessionOpened { session, .. } => Ok(session),
            other => Err(unexpected("SessionOpened", &other)),
        }
    }

    /// Admin: evict a session to its snapshot.
    ///
    /// # Errors
    ///
    /// Server-side failures arrive as [`WireError::Protocol`].
    pub fn evict(&mut self, session: u64) -> Result<(), WireError> {
        let req = self.fresh_req();
        match self.rpc(req, &Message::Evict { req, session })? {
            Message::Ack { .. } => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Admin: rebuild an evicted session from its snapshot.
    ///
    /// # Errors
    ///
    /// Server-side failures arrive as [`WireError::Protocol`].
    pub fn rehydrate(&mut self, session: u64) -> Result<(), WireError> {
        let req = self.fresh_req();
        match self.rpc(req, &Message::Rehydrate { req, session })? {
            Message::Ack { .. } => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Admin: fetch `(resident, evicted, finished, asks, tells)`.
    ///
    /// # Errors
    ///
    /// Server-side failures arrive as [`WireError::Protocol`].
    pub fn stats(&mut self) -> Result<(usize, usize, usize, u64, u64), WireError> {
        let req = self.fresh_req();
        match self.rpc(req, &Message::Stats { req })? {
            Message::StatsReply {
                resident,
                evicted,
                finished,
                asks,
                tells,
                ..
            } => Ok((resident, evicted, finished, asks, tells)),
            other => Err(unexpected("StatsReply", &other)),
        }
    }

    /// Admin: tell the server to stop handing out work.
    ///
    /// # Errors
    ///
    /// Server-side failures arrive as [`WireError::Protocol`].
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        let req = self.fresh_req();
        match self.rpc(req, &Message::Shutdown { req })? {
            Message::Ack { .. } => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Message) -> WireError {
    WireError::Protocol(format!("expected {wanted}, got {got:?}"))
}

/// The request id a reply echoes, when it is a reply.
fn reply_req(msg: &Message) -> Option<u64> {
    match msg {
        Message::Work { req, .. }
        | Message::NoWork { req }
        | Message::Bye { req }
        | Message::TellAck { req, .. }
        | Message::CheckpointAck { req, .. }
        | Message::Ack { req }
        | Message::StatsReply { req, .. }
        | Message::SessionOpened { req, .. }
        | Message::Error { req, .. } => Some(*req),
        _ => None,
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// What a finished worker loop did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Evaluations performed.
    pub evaluated: u64,
    /// Results the server accepted.
    pub accepted: u64,
    /// Results rejected as stale.
    pub stale: u64,
}

/// A remote simulator slot: asks for work, evaluates it against a
/// local registry of black boxes, and reports results until the server
/// says `Bye`.
pub struct WorkerClient {
    rpc: ServiceClient,
    registry: HashMap<String, Box<dyn BlackBox>>,
}

impl WorkerClient {
    /// A worker for `addr` with a clean link.
    pub fn connect(addr: SocketAddr) -> Self {
        Self::connect_with_chaos(addr, WireFaultPlan::clean(0))
    }

    /// A worker whose link suffers the given fault plan.
    pub fn connect_with_chaos(addr: SocketAddr, plan: WireFaultPlan) -> Self {
        WorkerClient {
            rpc: ServiceClient::connect_with_chaos(addr, Role::Worker, plan),
            registry: HashMap::new(),
        }
    }

    /// Registers a black box under the name sessions dispatch with.
    pub fn register(&mut self, bench: impl Into<String>, bb: Box<dyn BlackBox>) {
        self.registry.insert(bench.into(), bb);
    }

    /// Runs the ask/evaluate/tell loop until the server says `Bye`.
    ///
    /// # Errors
    ///
    /// Transport exhaustion ([`ServiceClient::rpc`] giving up) or a
    /// work item naming a black box this worker does not have.
    pub fn run(&mut self) -> Result<WorkerSummary, WireError> {
        let mut summary = WorkerSummary::default();
        loop {
            let req = self.rpc.fresh_req();
            let reply = self.rpc.rpc(req, &Message::AskWork { req })?;
            let work = match reply {
                Message::Bye { .. } => return Ok(summary),
                Message::NoWork { .. } => {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                Message::Work {
                    session,
                    task,
                    attempt,
                    worker,
                    x,
                    bench,
                    ..
                } => crate::manager::Work {
                    session,
                    task,
                    attempt,
                    worker,
                    x,
                    bench,
                },
                other => return Err(unexpected("Work/NoWork/Bye", &other)),
            };
            let Some(bb) = self.registry.get(&work.bench) else {
                return Err(WireError::Protocol(format!(
                    "no black box registered for '{}'",
                    work.bench
                )));
            };
            let e = work.evaluate(bb.as_ref());
            summary.evaluated += 1;
            let req = self.rpc.fresh_req();
            let tell = Message::TellResult {
                req,
                session: work.session,
                task: work.task,
                attempt: work.attempt,
                value: e.value,
                cost: e.cost,
                outcome: e.resolved_outcome(),
            };
            match self.rpc.rpc(req, &tell)? {
                Message::TellAck { accepted, .. } => {
                    if accepted {
                        summary.accepted += 1;
                    } else {
                        summary.stale += 1;
                    }
                }
                other => return Err(unexpected("TellAck", &other)),
            }
        }
    }
}
