//! The scenario zoo: ready-made constrained sizing briefs over the
//! analytical circuit models, each tying a circuit to its matching
//! constraints, specs and corner set.
//!
//! * [`matched_opamp`] — the two-stage Miller op-amp with its symmetric
//!   pairs *linked*, so the optimizer searches 10 dimensions instead of
//!   14 and matching holds exactly (not approximately via a mismatch
//!   penalty).
//! * [`multicorner_ldo`] — the LDO regulator signed off at the full
//!   `tt/ss/ff` PVT set, with stability, dropout and quiescent-current
//!   specs that must hold at *every* corner.

use easybo_circuits::ldo::Ldo;
use easybo_circuits::matched::MatchedOpAmp;
use easybo_circuits::Corner;

use crate::params::ParamSpace;
use crate::scenario::Scenario;
use crate::spec::Spec;

/// The matched-pair two-stage op-amp scenario: 14 raw device parameters
/// reduced to 10 by the symmetry links `w1b = w1a`, `l1b = l1a`,
/// `w3b = w3a`, `l3b = l3a`, with minimum-gain and phase-margin specs
/// at the nominal corner.
pub fn matched_opamp() -> Scenario {
    let space = ParamSpace::new(vec![
        ("w1a", 5e-6, 100e-6),
        ("l1a", 0.18e-6, 1e-6),
        ("w1b", 5e-6, 100e-6),
        ("l1b", 0.18e-6, 1e-6),
        ("w3a", 2e-6, 60e-6),
        ("l3a", 0.18e-6, 1e-6),
        ("w3b", 2e-6, 60e-6),
        ("l3b", 0.18e-6, 1e-6),
        ("w6", 10e-6, 200e-6),
        ("l6", 0.18e-6, 1e-6),
        ("ib", 5e-6, 50e-6),
        ("mb", 1.0, 8.0),
        ("cc", 0.2e-12, 3e-12),
        ("rz", 300.0, 10e3),
    ])
    .link("w1b", "w1a")
    .link("l1b", "l1a")
    .link("w3b", "w3a")
    .link("l3b", "l3a");
    Scenario::new("matched-opamp", MatchedOpAmp::new(), space)
        .with_spec(Spec::at_least("gain_db", 55.0))
        .with_spec(Spec::at_least("pm_deg", 50.0))
}

/// The multi-corner LDO scenario: all eight regulator parameters free,
/// signed off over [`Corner::pvt_set`] with worst-case phase-margin,
/// dropout and quiescent-current specs.
pub fn multicorner_ldo() -> Scenario {
    let space = ParamSpace::new(vec![
        ("w_pass", 500e-6, 10000e-6),
        ("l_pass", 0.18e-6, 0.5e-6),
        ("w_ea", 2e-6, 50e-6),
        ("l_ea", 0.2e-6, 2e-6),
        ("i_ea", 2e-6, 100e-6),
        ("c_out", 0.1e-6, 10e-6),
        ("r_esr", 1e-3, 1.0),
        ("r_div", 10e3, 1e6),
    ]);
    Scenario::new("multicorner-ldo", Ldo::new(), space)
        .with_corners(Corner::pvt_set())
        .with_spec(Spec::at_least("pm_deg", 50.0))
        .with_spec(Spec::at_most("dropout_v", 0.1))
        .with_spec(Spec::at_most("i_q_a", 2e-4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use easybo_circuits::Circuit;

    /// The known-good matched design (mirrors the circuit crate's own
    /// test point).
    fn matched_design() -> Vec<f64> {
        vec![
            30e-6, 0.5e-6, // w1a, l1a
            30e-6, 0.5e-6, // w1b, l1b
            20e-6, 0.5e-6, // w3a, l3a
            20e-6, 0.5e-6, // w3b, l3b
            80e-6, 0.3e-6, // w6, l6
            30e-6, 4.0, // ib, mb
            1.5e-12, 3e3, // cc, rz
        ]
    }

    /// The known-good LDO sizing (mirrors the circuit crate's own test
    /// point).
    fn ldo_nominal_design() -> Vec<f64> {
        vec![4000e-6, 0.18e-6, 20e-6, 0.5e-6, 30e-6, 4e-6, 0.2, 100e3]
    }

    #[test]
    fn matched_opamp_reduces_the_search_space() {
        let s = matched_opamp();
        assert_eq!(s.space().raw_dim(), 14);
        assert_eq!(s.space().reduced_dim(), 10);
        assert!(s.space().reduced_dim() < MatchedOpAmp::new().dim());
        // Bounds in the space agree with the circuit's own bounds.
        let circuit_pairs = MatchedOpAmp::new().bounds().pairs().to_vec();
        let mut rebuilt = vec![(0.0, 0.0); 14];
        for (i, &(lo, hi)) in circuit_pairs.iter().enumerate() {
            rebuilt[i] = (lo, hi);
        }
        let full = s.space().to_full(&s.reduced_bounds().center());
        for (v, &(lo, hi)) in full.iter().zip(&rebuilt) {
            assert!(lo <= *v && *v <= hi);
        }
    }

    #[test]
    fn matched_opamp_good_design_is_feasible() {
        let s = matched_opamp();
        let reduced = s.space().to_reduced(&matched_design());
        // matched_design has identical pair halves, so the projection
        // round-trips onto the same raw point.
        assert_eq!(s.space().to_full(&reduced), matched_design());
        for (j, slack) in s.spec_slacks(&reduced).iter().enumerate() {
            assert!(*slack >= 0.0, "spec {j} violated by the known-good design");
        }
    }

    #[test]
    fn multicorner_ldo_nominal_design_passes_all_corners() {
        let s = multicorner_ldo();
        let good = ldo_nominal_design();
        let reduced = s.space().to_reduced(&good);
        for (j, slack) in s.spec_slacks(&reduced).iter().enumerate() {
            assert!(*slack >= 0.0, "spec {j} violated at some corner");
        }
        // The center of the space is *not* feasible — the specs bite.
        let center = s.reduced_bounds().center();
        assert!(s.spec_slacks(&center).iter().any(|sl| *sl < 0.0));
    }

    #[test]
    fn zoo_scenarios_have_distinct_names_and_corners() {
        let a = matched_opamp();
        let b = multicorner_ldo();
        assert_ne!(a.name(), b.name());
        assert_eq!(a.corners().len(), 1);
        assert_eq!(b.corners().len(), 3);
        assert_eq!(b.specs().len(), 3);
    }
}
