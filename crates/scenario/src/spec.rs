//! The spec layer: named inequality design specifications compiled from
//! a circuit's [`Performances`] bundle into the `c(x) ≥ 0` slack
//! convention of constrained EasyBO.
//!
//! A sizing brief reads "phase margin at least 50°, quiescent current at
//! most 200µA". Each line becomes one [`Spec`]; its [`Spec::slack`] is
//! positive when satisfied, negative when violated, and its name (e.g.
//! `pm_deg>=50`) travels through `SpecViolated` telemetry events.

use easybo_circuits::Performances;

/// Direction of a spec inequality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpecOp {
    /// `metric ≥ threshold`.
    AtLeast,
    /// `metric ≤ threshold`.
    AtMost,
}

/// One named inequality over a circuit performance metric.
///
/// # Example
///
/// ```
/// use easybo_circuits::Performances;
/// use easybo_scenario::Spec;
///
/// let pm = Spec::at_least("pm_deg", 50.0);
/// assert_eq!(pm.name(), "pm_deg>=50");
/// let perf = Performances::new().with("pm_deg", 61.5);
/// assert!(pm.slack(&perf) > 0.0); // satisfied by 11.5 degrees
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    name: String,
    metric: &'static str,
    op: SpecOp,
    threshold: f64,
}

impl Spec {
    /// Spec `metric ≥ threshold`, named `{metric}>={threshold}`.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite threshold.
    pub fn at_least(metric: &'static str, threshold: f64) -> Self {
        assert!(threshold.is_finite(), "spec threshold must be finite");
        Spec {
            name: format!("{metric}>={threshold}"),
            metric,
            op: SpecOp::AtLeast,
            threshold,
        }
    }

    /// Spec `metric ≤ threshold`, named `{metric}<={threshold}`.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite threshold.
    pub fn at_most(metric: &'static str, threshold: f64) -> Self {
        assert!(threshold.is_finite(), "spec threshold must be finite");
        Spec {
            name: format!("{metric}<={threshold}"),
            metric,
            op: SpecOp::AtMost,
            threshold,
        }
    }

    /// The spec's display/telemetry name — free of `"` and `\` by
    /// construction (metric names are static identifiers and the
    /// threshold renders as a number).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The performance metric this spec constrains.
    pub fn metric(&self) -> &'static str {
        self.metric
    }

    /// The threshold value.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Signed slack of the spec at `perf`: `≥ 0` feasible, `< 0`
    /// violated. A bundle missing the metric is treated as maximally
    /// infeasible (`-∞`) — a spec against a metric the circuit never
    /// reports must fail loudly, not silently pass.
    pub fn slack(&self, perf: &Performances) -> f64 {
        match perf.get(self.metric) {
            Some(v) => match self.op {
                SpecOp::AtLeast => v - self.threshold,
                SpecOp::AtMost => self.threshold - v,
            },
            None => f64::NEG_INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_jsonl_safe_and_descriptive() {
        assert_eq!(Spec::at_least("gain_db", 55.0).name(), "gain_db>=55");
        assert_eq!(Spec::at_most("i_q_a", 2e-4).name(), "i_q_a<=0.0002");
        let name = Spec::at_most("dropout_v", 0.1).name().to_string();
        assert!(!name.contains('"') && !name.contains('\\'));
    }

    #[test]
    fn slack_signs_follow_the_inequality() {
        let perf = Performances::new().with("pm_deg", 48.0).with("i_q_a", 1e-4);
        assert_eq!(Spec::at_least("pm_deg", 50.0).slack(&perf), -2.0);
        assert_eq!(Spec::at_least("pm_deg", 45.0).slack(&perf), 3.0);
        assert!(Spec::at_most("i_q_a", 2e-4).slack(&perf) > 0.0);
        assert!(Spec::at_most("i_q_a", 0.5e-4).slack(&perf) < 0.0);
    }

    #[test]
    fn missing_metric_is_infeasible() {
        let perf = Performances::new().with("pm_deg", 60.0);
        assert_eq!(
            Spec::at_least("nonexistent", 1.0).slack(&perf),
            f64::NEG_INFINITY
        );
    }
}
