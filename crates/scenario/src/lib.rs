//! Constrained sizing scenario zoo for the EasyBO reproduction.
//!
//! Real analog sizing briefs are never "maximize one scalar over a box".
//! They come with *structure* the raw optimizer cannot see:
//!
//! 1. **parameter constraints** — matched pairs and mirror ratios are
//!    equalities between device parameters; [`ParamSpace`] eliminates
//!    the dependent variables so the GP searches a strictly smaller
//!    *reduced* space and the equalities hold bitwise by construction;
//! 2. **design specs** — inequality requirements over the circuit's
//!    [`Performances`](easybo_circuits::Performances) bundle; each
//!    [`Spec`] compiles to one constraint GP of the probability-of-
//!    feasibility layer, so the optimizer reports the best *feasible*
//!    design, not the best number;
//! 3. **corners** — sign-off re-simulates every candidate at a PVT
//!    [`Corner`](easybo_circuits::Corner) set and keeps the worst case;
//!    a [`Scenario`] fans each query out through the executor's
//!    multi-corner black box.
//!
//! A [`Scenario`] bundles all three with a circuit and runs constrained
//! asynchronous EasyBO end-to-end:
//!
//! ```
//! use easybo_scenario::zoo;
//!
//! # fn main() -> easybo::Result<()> {
//! let scenario = zoo::matched_opamp();
//! // 14 raw device parameters, 10 searched: the matched pairs are linked.
//! assert_eq!(scenario.space().raw_dim(), 14);
//! assert_eq!(scenario.space().reduced_dim(), 10);
//! let mut opt = scenario.optimizer();
//! opt.initial_points(6).max_evals(10).seed(7);
//! let outcome = scenario.run_with(&opt)?;
//! assert_eq!(outcome.best_full.len(), 14);
//! // Every spec holds at the reported incumbent.
//! assert!(outcome.best_slacks.iter().all(|s| *s >= 0.0));
//! # Ok(())
//! # }
//! ```
//!
//! Runs are bit-identical across the executor `parallelism` knob and
//! survive kill/resume byte-identically — the scenario layer adds no
//! nondeterminism on top of the constrained optimizer's guarantees.

pub mod params;
pub mod scenario;
pub mod spec;
pub mod zoo;

pub use params::{Link, ParamSpace};
pub use scenario::{Scenario, ScenarioOutcome};
pub use spec::Spec;
