//! A [`Scenario`] ties the three layers together: a [`CornerCircuit`]
//! workload, a linked [`ParamSpace`], a PVT [`Corner`] set, and a list
//! of [`Spec`]s — and drives constrained asynchronous EasyBO over the
//! *reduced* space with worst-case multi-corner aggregation.
//!
//! The executor sees one [`FanOutBlackBox`]: each proposed reduced
//! point is projected to the raw space, simulated once per corner, and
//! scored by its worst corner (value = min, cost = max — corner jobs
//! run concurrently on a real farm). Spec slacks take the same
//! worst-case over corners, so "feasible" means *feasible at every
//! corner*.

use std::path::Path;
use std::sync::Arc;

use easybo::{ConstrainedProblem, EasyBo, OptimizationResult};
use easybo_circuits::{Corner, CornerCircuit};
use easybo_exec::{CostedFunction, FanOutBlackBox, SimTimeModel};
use easybo_opt::Bounds;

use crate::params::ParamSpace;
use crate::spec::Spec;

/// Default mean simulation seconds per corner job.
const DEFAULT_SIM_SECONDS: f64 = 30.0;
/// Default relative spread of simulation time across the design space.
const DEFAULT_SIM_SPREAD: f64 = 0.25;
/// Default seed for the per-corner simulation-time models.
const DEFAULT_SIM_SEED: u64 = 0x5ce0;

/// A constrained, multi-corner sizing scenario over a reduced search
/// space. Build one with the builder methods (or pick one from
/// [`crate::zoo`]), then drive it with [`Scenario::run_with`].
pub struct Scenario {
    name: &'static str,
    circuit: Arc<dyn CornerCircuit>,
    space: ParamSpace,
    corners: Vec<Corner>,
    specs: Vec<Spec>,
    sim_seconds: f64,
    sim_spread: f64,
    sim_seed: u64,
}

impl Scenario {
    /// Creates a scenario over `circuit` searched through `space`, at
    /// the nominal corner and with no specs (add them builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the space's raw dimension differs from the circuit's.
    pub fn new(
        name: &'static str,
        circuit: impl CornerCircuit + 'static,
        space: ParamSpace,
    ) -> Self {
        assert_eq!(
            space.raw_dim(),
            circuit.dim(),
            "parameter space raw dimension must match the circuit"
        );
        Scenario {
            name,
            circuit: Arc::new(circuit),
            space,
            corners: vec![Corner::nominal()],
            specs: Vec::new(),
            sim_seconds: DEFAULT_SIM_SECONDS,
            sim_spread: DEFAULT_SIM_SPREAD,
            sim_seed: DEFAULT_SIM_SEED,
        }
    }

    /// Replaces the corner set (builder style).
    ///
    /// # Panics
    ///
    /// Panics on an empty set.
    pub fn with_corners(mut self, corners: Vec<Corner>) -> Self {
        assert!(!corners.is_empty(), "a scenario needs at least one corner");
        self.corners = corners;
        self
    }

    /// Adds a design spec (builder style).
    pub fn with_spec(mut self, spec: Spec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Overrides the simulated evaluation-time model (builder style):
    /// mean seconds per corner job, relative spread, seed.
    pub fn with_sim_time(mut self, mean_seconds: f64, spread: f64, seed: u64) -> Self {
        self.sim_seconds = mean_seconds;
        self.sim_spread = spread;
        self.sim_seed = seed;
        self
    }

    /// Scenario name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The linked parameter space.
    pub fn space(&self) -> &ParamSpace {
        &self.space
    }

    /// The corner set, evaluation order.
    pub fn corners(&self) -> &[Corner] {
        &self.corners
    }

    /// The design specs.
    pub fn specs(&self) -> &[Spec] {
        &self.specs
    }

    /// The reduced search space the optimizer works in.
    pub fn reduced_bounds(&self) -> Bounds {
        self.space.reduced_bounds()
    }

    /// Worst-case (minimum) figure of merit over the corner set at a
    /// *reduced* point — the value the executor records.
    pub fn worst_fom(&self, reduced: &[f64]) -> f64 {
        let full = self.space.to_full(reduced);
        self.corners
            .iter()
            .map(|c| self.circuit.fom_at(&full, c))
            .fold(f64::INFINITY, f64::min)
    }

    /// Worst-case (minimum over corners) slack of spec `j` at a reduced
    /// point — feasible means feasible at *every* corner.
    pub fn spec_slack(&self, reduced: &[f64], j: usize) -> f64 {
        let full = self.space.to_full(reduced);
        let spec = &self.specs[j];
        self.corners
            .iter()
            .map(|c| spec.slack(&self.circuit.performances_at(&full, c)))
            .fold(f64::INFINITY, f64::min)
    }

    /// Worst-case slacks of every spec at a reduced point.
    pub fn spec_slacks(&self, reduced: &[f64]) -> Vec<f64> {
        (0..self.specs.len())
            .map(|j| self.spec_slack(reduced, j))
            .collect()
    }

    /// The multi-corner black box: one member per corner, each an
    /// independently seeded simulation-time model over the reduced
    /// bounds. Deterministic — rebuilding it (e.g. to resume a run)
    /// yields an identically behaving box.
    pub fn blackbox(&self) -> FanOutBlackBox {
        let bounds = self.reduced_bounds();
        let mut fan = FanOutBlackBox::new(self.name, bounds.clone());
        for (i, corner) in self.corners.iter().enumerate() {
            let time = SimTimeModel::new(
                &bounds,
                self.sim_seconds,
                self.sim_spread,
                self.sim_seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let circuit = Arc::clone(&self.circuit);
            let space = self.space.clone();
            let corner = corner.clone();
            let label = corner.name;
            let member = CostedFunction::new(
                format!("{}@{}", self.name, label),
                bounds.clone(),
                time,
                move |reduced: &[f64]| circuit.fom_at(&space.to_full(reduced), &corner),
            );
            fan = fan.with_member(label, Box::new(member));
        }
        fan
    }

    /// A preconfigured optimizer over the reduced bounds — set budget,
    /// seed, checkpointing etc. on it, then pass it back to
    /// [`Scenario::run_with`].
    pub fn optimizer(&self) -> EasyBo {
        EasyBo::new(self.reduced_bounds())
    }

    /// Builds the scenario's [`ConstrainedProblem`] and hands it to
    /// `f` — the problem borrows per-call closures, so it cannot
    /// outlive this frame.
    fn with_problem<R>(&self, f: impl FnOnce(&ConstrainedProblem<'_>) -> R) -> R {
        let objective = |x: &[f64]| self.worst_fom(x);
        let slacks: Vec<_> = (0..self.specs.len())
            .map(|j| move |x: &[f64]| self.spec_slack(x, j))
            .collect();
        let mut problem = ConstrainedProblem::new(&objective);
        for (spec, c) in self.specs.iter().zip(&slacks) {
            problem = problem.subject_to_named(spec.name(), c);
        }
        f(&problem)
    }

    /// Runs constrained asynchronous EasyBO on this scenario. `opt`
    /// must have been built over [`Scenario::reduced_bounds`] (use
    /// [`Scenario::optimizer`]); budget, seed, telemetry, retry,
    /// checkpointing and parallelism are read from it.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`EasyBo::run_constrained_blackbox`].
    ///
    /// # Panics
    ///
    /// Panics if `opt` was configured over different bounds.
    pub fn run_with(&self, opt: &EasyBo) -> easybo::Result<ScenarioOutcome> {
        self.check_bounds(opt);
        let bb = self.blackbox();
        let result = self.with_problem(|problem| opt.run_constrained_blackbox(problem, &bb))?;
        Ok(self.outcome(result))
    }

    /// Resumes a checkpointed scenario run (see
    /// [`EasyBo::checkpoint_to`] and [`EasyBo::resume_constrained`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`EasyBo::resume_constrained`].
    ///
    /// # Panics
    ///
    /// Panics if `opt` was configured over different bounds.
    pub fn resume_with(
        &self,
        opt: &EasyBo,
        path: impl AsRef<Path>,
    ) -> easybo::Result<ScenarioOutcome> {
        self.check_bounds(opt);
        let bb = self.blackbox();
        let result =
            self.with_problem(|problem| opt.resume_constrained(path.as_ref(), problem, &bb))?;
        Ok(self.outcome(result))
    }

    fn check_bounds(&self, opt: &EasyBo) {
        assert_eq!(
            opt.bounds(),
            &self.reduced_bounds(),
            "optimizer bounds must be the scenario's reduced bounds \
             (build it with Scenario::optimizer)"
        );
    }

    /// Annotates the raw optimizer result with the projected raw design
    /// and its per-spec / per-corner breakdown.
    fn outcome(&self, result: OptimizationResult) -> ScenarioOutcome {
        let best_full = self.space.to_full(&result.best_x);
        let best_slacks = self.spec_slacks(&result.best_x);
        let corner_foms = self
            .corners
            .iter()
            .map(|c| (c.name, self.circuit.fom_at(&best_full, c)))
            .collect();
        ScenarioOutcome {
            result,
            best_full,
            best_slacks,
            corner_foms,
        }
    }
}

/// Outcome of a scenario run: the optimizer result (whose `best_x` and
/// `best_value` are the best *feasible* reduced design and its
/// worst-corner FOM) plus the scenario-level breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The underlying constrained optimization result (reduced space).
    pub result: OptimizationResult,
    /// The best feasible design projected to the raw parameter space.
    pub best_full: Vec<f64>,
    /// Worst-case slack of each spec at the incumbent (all `≥ 0`).
    pub best_slacks: Vec<f64>,
    /// Figure of merit of the incumbent at each corner, in corner
    /// order.
    pub corner_foms: Vec<(&'static str, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Spec;
    use easybo_circuits::ldo::Ldo;

    fn tiny_ldo_scenario() -> Scenario {
        let space = ParamSpace::new(vec![
            ("w_pass", 500e-6, 10000e-6),
            ("l_pass", 0.18e-6, 0.5e-6),
            ("w_ea", 2e-6, 50e-6),
            ("l_ea", 0.2e-6, 2e-6),
            ("i_ea", 2e-6, 100e-6),
            ("c_out", 0.1e-6, 10e-6),
            ("r_esr", 1e-3, 1.0),
            ("r_div", 10e3, 1e6),
        ]);
        Scenario::new("tiny-ldo", Ldo::new(), space)
            .with_corners(Corner::pvt_set())
            .with_spec(Spec::at_least("pm_deg", 50.0))
    }

    #[test]
    fn worst_case_aggregation_is_min_over_corners() {
        let s = tiny_ldo_scenario();
        let ldo = Ldo::new();
        let r = s.reduced_bounds().center();
        let per_corner: Vec<f64> = Corner::pvt_set()
            .iter()
            .map(|c| ldo.fom_at(&r, c))
            .collect();
        let expected = per_corner.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(s.worst_fom(&r), expected);
        // The black box agrees with the analytical worst case.
        use easybo_exec::BlackBox as _;
        let e = s.blackbox().evaluate(&r);
        assert_eq!(e.value, expected);
    }

    #[test]
    fn spec_slacks_take_the_worst_corner() {
        let s = tiny_ldo_scenario();
        let ldo = Ldo::new();
        let r = s.reduced_bounds().center();
        let worst_pm = Corner::pvt_set()
            .iter()
            .map(|c| ldo.performances_at(&r, c).get("pm_deg").unwrap())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(s.spec_slack(&r, 0), worst_pm - 50.0);
        assert_eq!(s.spec_slacks(&r), vec![worst_pm - 50.0]);
    }

    #[test]
    fn blackbox_is_deterministic_and_labelled() {
        use easybo_exec::BlackBox as _;
        let s = tiny_ldo_scenario();
        let bb1 = s.blackbox();
        let bb2 = s.blackbox();
        assert_eq!(bb1.n_members(), 3);
        assert_eq!(bb1.member_labels(), vec!["tt", "ss", "ff"]);
        let x = s.reduced_bounds().center();
        assert_eq!(bb1.evaluate(&x), bb2.evaluate(&x));
    }

    #[test]
    #[should_panic(expected = "reduced bounds")]
    fn mismatched_optimizer_bounds_are_rejected() {
        let s = tiny_ldo_scenario();
        let opt = EasyBo::new(Bounds::unit_cube(3).unwrap());
        let _ = s.run_with(&opt);
    }

    #[test]
    #[should_panic(expected = "raw dimension")]
    fn wrong_space_dimension_is_rejected() {
        let space = ParamSpace::new(vec![("x", 0.0, 1.0)]);
        let _ = Scenario::new("bad", Ldo::new(), space);
    }
}
