//! The parameter-constraint layer: named design variables with
//! equality/expression links that shrink the search space the optimizer
//! actually sees.
//!
//! Analog sizing constraints like "the diff-pair halves match"
//! (`w1b = w1a`) or "the output mirror is 2× the reference"
//! (`w_out = 2·w_mirror`) are *equalities*, not inequalities — handled
//! best by eliminating variables, not by penalties. A [`ParamSpace`]
//! records one [`Link`] per raw parameter; linked parameters are
//! reconstructed deterministically from their source, and the GP only
//! ever models the free (reduced) coordinates.
//!
//! The projection contract, pinned by property tests:
//!
//! * `to_reduced(to_full(r)) == r` **bitwise** — free values pass
//!   through untouched;
//! * a [`Link::Copy`] target is **bitwise equal** to its source in the
//!   full vector (no arithmetic touches it);
//! * `to_full` output always respects the free parameters' bounds when
//!   the reduced input does.

use easybo_opt::Bounds;

/// How one raw parameter gets its value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Link {
    /// A coordinate of the reduced space: the optimizer chooses it.
    Free,
    /// Equality link: bitwise copy of the raw parameter at this index.
    Copy(usize),
    /// Expression link: `factor ×` the raw parameter at this index.
    Scaled(usize, f64),
}

/// A named, box-bounded raw design space plus the link structure that
/// projects it down to the reduced space the optimizer searches.
///
/// # Example
///
/// ```
/// use easybo_scenario::ParamSpace;
///
/// let space = ParamSpace::new(vec![
///     ("w1", 1.0, 10.0),
///     ("w2", 1.0, 10.0),
///     ("w_out", 1.0, 40.0),
/// ])
/// .link("w2", "w1")               // matched pair
/// .link_scaled("w_out", "w1", 2.0); // 2x mirror
/// assert_eq!(space.raw_dim(), 3);
/// assert_eq!(space.reduced_dim(), 1);
/// let full = space.to_full(&[3.0]);
/// assert_eq!(full, vec![3.0, 3.0, 6.0]);
/// assert_eq!(space.to_reduced(&full), vec![3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpace {
    names: Vec<&'static str>,
    full_bounds: Vec<(f64, f64)>,
    links: Vec<Link>,
}

impl ParamSpace {
    /// Creates a space of all-free parameters from `(name, lo, hi)`
    /// triples.
    ///
    /// # Panics
    ///
    /// Panics on an empty list, duplicate names, non-finite or inverted
    /// bounds.
    pub fn new(params: Vec<(&'static str, f64, f64)>) -> Self {
        assert!(!params.is_empty(), "parameter space cannot be empty");
        let mut names = Vec::with_capacity(params.len());
        let mut full_bounds = Vec::with_capacity(params.len());
        for (name, lo, hi) in params {
            assert!(
                lo.is_finite() && hi.is_finite() && lo < hi,
                "parameter {name:?} has invalid bounds [{lo}, {hi}]"
            );
            assert!(!names.contains(&name), "duplicate parameter name {name:?}");
            names.push(name);
            full_bounds.push((lo, hi));
        }
        let links = vec![Link::Free; names.len()];
        ParamSpace {
            names,
            full_bounds,
            links,
        }
    }

    fn index_of(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unknown parameter {name:?}"))
    }

    /// Validates a prospective `target = f(source)` link and returns the
    /// two raw indices.
    fn validate_link(&self, target: &str, source: &str) -> (usize, usize) {
        let t = self.index_of(target);
        let s = self.index_of(source);
        assert_ne!(t, s, "cannot link parameter {target:?} to itself");
        assert_eq!(
            self.links[t],
            Link::Free,
            "parameter {target:?} is already linked"
        );
        assert_eq!(
            self.links[s],
            Link::Free,
            "link source {source:?} must be a free parameter"
        );
        assert!(
            !self.links.iter().any(|l| matches!(
                l,
                Link::Copy(i) | Link::Scaled(i, _) if *i == t
            )),
            "parameter {target:?} is the source of another link"
        );
        (t, s)
    }

    /// Adds the equality link `target = source` (builder style). The
    /// target leaves the reduced space; its full-vector value is a
    /// bitwise copy of the source.
    ///
    /// # Panics
    ///
    /// Panics on unknown names, self-links, re-linking an already
    /// linked target, or a source that is itself linked (chains must be
    /// expressed against the free root).
    pub fn link(mut self, target: &'static str, source: &'static str) -> Self {
        let (t, s) = self.validate_link(target, source);
        self.links[t] = Link::Copy(s);
        self
    }

    /// Adds the expression link `target = factor × source` (builder
    /// style).
    ///
    /// # Panics
    ///
    /// As [`ParamSpace::link`], plus non-finite or non-positive
    /// `factor`.
    pub fn link_scaled(mut self, target: &'static str, source: &'static str, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "link factor must be finite and positive, got {factor}"
        );
        let (t, s) = self.validate_link(target, source);
        self.links[t] = Link::Scaled(s, factor);
        self
    }

    /// Number of raw parameters.
    pub fn raw_dim(&self) -> usize {
        self.names.len()
    }

    /// Number of free (searchable) parameters.
    pub fn reduced_dim(&self) -> usize {
        self.links.iter().filter(|l| **l == Link::Free).count()
    }

    /// Raw parameter names, in raw index order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// The link of each raw parameter, in raw index order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Raw indices of the free parameters, in raw index order — the
    /// coordinate order of the reduced space.
    pub fn free_indices(&self) -> Vec<usize> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == Link::Free)
            .map(|(i, _)| i)
            .collect()
    }

    /// The reduced search space: the free parameters' bounds, in raw
    /// index order.
    pub fn reduced_bounds(&self) -> Bounds {
        let pairs: Vec<(f64, f64)> = self
            .free_indices()
            .into_iter()
            .map(|i| self.full_bounds[i])
            .collect();
        Bounds::new(pairs).expect("free-parameter bounds validated at construction")
    }

    /// Projects a reduced point up to the raw space: free values are
    /// written through verbatim, then every link is resolved from its
    /// (free) source.
    ///
    /// # Panics
    ///
    /// Panics if `reduced.len() != reduced_dim()`.
    pub fn to_full(&self, reduced: &[f64]) -> Vec<f64> {
        assert_eq!(
            reduced.len(),
            self.reduced_dim(),
            "reduced point has wrong dimension"
        );
        let mut full = vec![0.0; self.raw_dim()];
        let mut next = 0;
        for (i, link) in self.links.iter().enumerate() {
            if *link == Link::Free {
                full[i] = reduced[next];
                next += 1;
            }
        }
        for (i, link) in self.links.iter().enumerate() {
            match *link {
                Link::Free => {}
                Link::Copy(s) => full[i] = full[s],
                Link::Scaled(s, k) => full[i] = k * full[s],
            }
        }
        full
    }

    /// Projects a raw point down to the reduced space by reading the
    /// free coordinates (link targets are simply dropped — if the raw
    /// point violates its links, that information is lost, which is why
    /// the optimizer only ever works in the reduced space).
    ///
    /// # Panics
    ///
    /// Panics if `full.len() != raw_dim()`.
    pub fn to_reduced(&self, full: &[f64]) -> Vec<f64> {
        assert_eq!(full.len(), self.raw_dim(), "raw point has wrong dimension");
        self.free_indices().into_iter().map(|i| full[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ("a", 0.0, 1.0),
            ("b", 0.0, 1.0),
            ("c", 0.0, 4.0),
            ("d", -1.0, 1.0),
        ])
        .link("b", "a")
        .link_scaled("c", "a", 3.0)
    }

    #[test]
    fn projection_shapes() {
        let s = space();
        assert_eq!(s.raw_dim(), 4);
        assert_eq!(s.reduced_dim(), 2);
        assert_eq!(s.free_indices(), vec![0, 3]);
        assert_eq!(s.reduced_bounds().pairs(), &[(0.0, 1.0), (-1.0, 1.0)]);
    }

    #[test]
    fn links_resolve_and_copies_are_bitwise() {
        let s = space();
        let r = vec![0.1 + 0.2, -0.5]; // deliberately non-representable value
        let full = s.to_full(&r);
        assert_eq!(full[0].to_bits(), r[0].to_bits());
        assert_eq!(full[1].to_bits(), full[0].to_bits(), "Copy is bitwise");
        assert_eq!(full[2], 3.0 * full[0]);
        assert_eq!(full[3].to_bits(), r[1].to_bits());
        let back = s.to_reduced(&full);
        assert_eq!(back.len(), 2);
        for (a, b) in back.iter().zip(&r) {
            assert_eq!(a.to_bits(), b.to_bits(), "round trip is bitwise");
        }
    }

    #[test]
    fn all_free_space_is_identity() {
        let s = ParamSpace::new(vec![("x", 0.0, 1.0), ("y", 0.0, 1.0)]);
        assert_eq!(s.reduced_dim(), 2);
        let r = vec![0.25, 0.75];
        assert_eq!(s.to_full(&r), r);
        assert_eq!(s.to_reduced(&r), r);
    }

    #[test]
    #[should_panic(expected = "already linked")]
    fn double_link_is_rejected() {
        let _ = space().link("b", "d");
    }

    #[test]
    #[should_panic(expected = "must be a free parameter")]
    fn chained_link_is_rejected() {
        let _ = space().link("d", "b");
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn unknown_name_is_rejected() {
        let _ = space().link("d", "nope");
    }

    #[test]
    #[should_panic(expected = "source of another link")]
    fn linking_a_source_is_rejected() {
        // `a` is the source of b and c; making it a target would chain.
        let _ = space().link("a", "d");
    }

    #[test]
    #[should_panic(expected = "link factor")]
    fn bad_factor_is_rejected() {
        let _ =
            ParamSpace::new(vec![("x", 0.0, 1.0), ("y", 0.0, 1.0)]).link_scaled("y", "x", f64::NAN);
    }
}
