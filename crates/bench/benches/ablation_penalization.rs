//! Ablation bench (beyond the paper): penalization *mode* comparison on the
//! op-amp benchmark — the paper's hallucinated-mean scheme (Eq. 9 / BUCB)
//! against the constant-liar alternatives of Ginsbourger et al., plus the
//! λ sweep of the κ-sampling range. Both design choices are called out in
//! DESIGN.md §5.
//!
//! Not part of `run_benches.sh` by default; run directly:
//!
//! ```sh
//! cargo bench -p easybo-bench --bench ablation_penalization
//! ```

use easybo::policies::{AcqOptConfig, EasyBoAsyncPolicy, PenalizationMode};
use easybo::SurrogateConfig;
use easybo_bench::*;
use easybo_exec::{BlackBox, VirtualExecutor};
use easybo_opt::sampling;
use rand::SeedableRng;

fn main() {
    let reps = reps();
    let bb = opamp_blackbox();
    let max_evals = scaled(150);
    let n_init = 20.min(max_evals / 2);
    let batch = 10;
    println!(
        "Penalization-mode & lambda ablation: op-amp, B={batch}, {reps} reps, {max_evals} sims"
    );

    let run_with = |mode: PenalizationMode, lambda: f64, seed: u64| -> easybo_exec::RunResult {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let init = sampling::latin_hypercube(bb.bounds(), n_init, &mut rng);
        let mut policy = EasyBoAsyncPolicy::with_configs(
            bb.bounds().clone(),
            true,
            lambda,
            seed,
            SurrogateConfig::default(),
            AcqOptConfig::for_dim(bb.bounds().dim()),
        );
        policy.penalization_mode(mode);
        VirtualExecutor::new(batch).run_async(&bb, &init, max_evals, &mut policy)
    };

    let mut rows = Vec::new();
    for mode in PenalizationMode::all() {
        let runs: Vec<_> = (0..reps)
            .map(|r| run_with(mode, 6.0, 300 + r as u64))
            .collect();
        rows.push(summarize(format!("pen={}", mode.label()), &runs));
        eprintln!("done: mode {}", mode.label());
    }
    for lambda in [0.0, 2.0, 6.0, 20.0] {
        let runs: Vec<_> = (0..reps)
            .map(|r| run_with(PenalizationMode::HallucinateMean, lambda, 400 + r as u64))
            .collect();
        rows.push(summarize(format!("lambda={lambda}"), &runs));
        eprintln!("done: lambda {lambda}");
    }
    print_table(
        "ABLATION: penalization mode and lambda (op-amp, B=10)",
        &rows,
    );
}
