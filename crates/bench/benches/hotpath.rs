//! Hot-path benchmark: batched GP posterior vs scalar prediction, and the
//! parallel multi-start / parallel training fan-out vs the sequential
//! legacy path.
//!
//! Prints a table and writes `BENCH_hotpath.json` at the repository root
//! with the measured times, speedups, the host thread count, and a
//! bit-identity verdict for every parallel comparison. Repetition count
//! comes from `EASYBO_REPS` (default 5); each cell reports the best
//! (minimum) wall-clock across repetitions.

use std::time::Instant;

use easybo_bench::{bench_report, host_threads, write_bench_report, BenchRecord};
use easybo_gp::{Gp, GpConfig, KernelFamily, TrainConfig};
use easybo_opt::{sampling, Bounds, MultiStartMaximizer, Parallelism};
use rand::SeedableRng;

/// Deterministic training data on the unit cube: `n` points, `d` dims.
fn training_data(n: usize, d: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let bounds = Bounds::unit_cube(d).expect("unit cube");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let xs = sampling::latin_hypercube(&bounds, n, &mut rng);
    let ys: Vec<f64> = xs
        .iter()
        .map(|p| {
            p.iter()
                .enumerate()
                .map(|(i, v)| (v * (i + 1) as f64).sin())
                .sum()
        })
        .collect();
    (xs, ys)
}

fn fitted_gp(n: usize, d: usize) -> Gp {
    let (xs, ys) = training_data(n, d, 7);
    Gp::fit_with_params(
        xs,
        ys,
        KernelFamily::SquaredExponential,
        vec![0.0; d + 1],
        (1e-4f64).ln(),
    )
    .expect("fits")
}

/// Best-of-`reps` wall-clock of `f`, in seconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

/// predict_batch on `m` probes vs `m` scalar `predict` calls.
fn bench_predict_batch(rows: &mut Vec<BenchRecord>, reps: usize, label: &str, n: usize, d: usize) {
    let gp = fitted_gp(n, d);
    let bounds = Bounds::unit_cube(d).expect("unit cube");
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let probes = sampling::uniform(&bounds, 256, &mut rng);

    let (scalar_s, scalar) = time_best(reps, || {
        probes.iter().map(|p| gp.predict(p)).collect::<Vec<_>>()
    });
    let (batch_s, batch) = time_best(reps, || gp.predict_batch(&probes));
    let identical = scalar
        .iter()
        .zip(&batch)
        .all(|(a, b)| a.mean.to_bits() == b.mean.to_bits());
    rows.push(BenchRecord::from_seconds(
        format!("predict_batch_vs_scalar_{label}_n{n}_d{d}_m256"),
        scalar_s,
        batch_s,
        identical,
    ));
}

/// Multi-start acquisition maximization at k=8 vs the sequential path.
fn bench_parallel_multistart(rows: &mut Vec<BenchRecord>, reps: usize, d: usize) {
    let gp = fitted_gp(200, d);
    let bounds = Bounds::unit_cube(d).expect("unit cube");
    let ms = MultiStartMaximizer::new(64.max(44 * d), 8, 100.max(14 * d));
    let acq = |p: &[f64]| {
        let pr = gp.predict(p);
        0.65 * pr.mean + 0.35 * pr.variance.max(0.0).sqrt()
    };
    let run = |k: usize| {
        ms.maximize_batched(
            &bounds,
            &mut rand::rngs::StdRng::seed_from_u64(3),
            Parallelism::new(k),
            &acq,
        )
    };
    let (seq_s, seq) = time_best(reps, || run(1));
    let (par_s, par) = time_best(reps, || run(8));
    rows.push(BenchRecord::from_seconds(
        format!("parallel_multistart_k8_vs_k1_d{d}"),
        seq_s,
        par_s,
        seq.x == par.x && seq.value.to_bits() == par.value.to_bits(),
    ));
}

/// GP hyperparameter training with 8 restart workers vs sequential.
fn bench_parallel_train(rows: &mut Vec<BenchRecord>, reps: usize, n: usize, d: usize) {
    let (xs, ys) = training_data(n, d, 13);
    let fit = |k: usize| {
        let config = GpConfig {
            train: TrainConfig {
                restarts: 7,
                parallelism: Parallelism::new(k),
                ..TrainConfig::default()
            },
            ..GpConfig::default()
        };
        Gp::fit(xs.clone(), ys.clone(), config).expect("fits")
    };
    let (seq_s, seq) = time_best(reps, || fit(1));
    let (par_s, par) = time_best(reps, || fit(8));
    let identical =
        seq.theta() == par.theta() && seq.log_noise().to_bits() == par.log_noise().to_bits();
    rows.push(BenchRecord::from_seconds(
        format!("parallel_train_k8_vs_k1_n{n}_d{d}"),
        seq_s,
        par_s,
        identical,
    ));
}

fn main() {
    let reps: usize = std::env::var("EASYBO_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    println!(
        "Hot-path benchmark: {reps} repetitions, {} host thread(s)",
        host_threads()
    );

    let mut rows = Vec::new();
    // Table I / Table II problem sizes: 10-d op-amp, 12-d class-E PA.
    bench_predict_batch(&mut rows, reps, "opamp", 400, 10);
    bench_predict_batch(&mut rows, reps, "class_e", 400, 12);
    bench_parallel_multistart(&mut rows, reps, 10);
    bench_parallel_train(&mut rows, reps, 200, 10);

    println!(
        "{:<48} {:>12} {:>12} {:>9} {:>10}",
        "benchmark", "baseline_s", "candidate_s", "speedup", "identical"
    );
    for r in &rows {
        println!(
            "{:<48} {:>12.6} {:>12.6} {:>8.2}x {:>10}",
            r.name,
            r.baseline_ns / 1e9,
            r.candidate_ns / 1e9,
            r.speedup(),
            r.identical
        );
    }

    let json = bench_report(
        "hotpath",
        reps,
        "baseline = scalar/sequential path, candidate = batched/parallel path; best-of-reps \
         wall clock. Thread speedups require host_threads > 1; on a single-core host the \
         parallel rows measure fan-out overhead only, while the predict_batch rows are \
         algorithmic and host-independent.",
        &rows,
    );
    let path = write_bench_report("BENCH_hotpath.json", &json);
    println!("wrote {path}");

    assert!(
        rows.iter().all(|r| r.identical),
        "parallel/batched results must be bit-identical to the sequential path"
    );
}
