//! Incremental-factorization benchmark: rank-1 Cholesky maintenance vs
//! full refactorization.
//!
//! Two families of rows:
//!
//! * `tell_rank1_vs_full_n*` — the per-tell cost of absorbing one new
//!   observation into the surrogate's kernel factor: baseline rebuilds the
//!   `(n+1)×(n+1)` factor from scratch (blocked `Cholesky::new`, `O(n³)`),
//!   the candidate extends the cached `n×n` factor by one row
//!   (`Cholesky::extend`, `O(n²)`, including the factor copy a persistent
//!   cache avoids entirely).
//! * `pseudo_stack_vs_clone_augment_n*_b*` — one busy-point penalization
//!   inner loop: baseline clones the GP and hallucinates `b` busy points
//!   (`Gp::augment`), the candidate pushes them onto the cached factor
//!   stack and pops them back off (`IncrementalGp::push_pseudo_mean` /
//!   `pop_all_pseudo`).
//!
//! Prints a table and writes `BENCH_incremental.json` at the repository
//! root. Repetition count comes from `EASYBO_REPS` (default 5); each cell
//! reports the best (minimum) wall-clock across repetitions.

use std::time::Instant;

use easybo_bench::{bench_report, host_threads, write_bench_report, BenchRecord};
use easybo_gp::{ArdKernel, Gp, IncrementalGp, KernelFamily};
use easybo_linalg::{Cholesky, Matrix, Vector};
use easybo_opt::{sampling, Bounds};
use rand::SeedableRng;

/// Deterministic inputs on the unit cube: `n` points, `d` dims.
fn unit_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let bounds = Bounds::unit_cube(d).expect("unit cube");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    sampling::latin_hypercube(&bounds, n, &mut rng)
}

/// Best-of-`reps` wall-clock of `f`, in seconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

/// Kernel matrix `K + σ_n²·I` over `xs` with unit ARD hyperparameters.
fn kernel_matrix(kernel: &ArdKernel, theta: &[f64], xs: &[Vec<f64>], noise: f64) -> Matrix {
    let n = xs.len();
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = kernel.eval(theta, &xs[i], &xs[j]);
            k[(i, j)] = v;
            k[(j, i)] = v;
        }
        k[(i, i)] += noise;
    }
    k
}

/// One tell at size `n`: extend the cached `n×n` factor by one row vs
/// refactorize the full `(n+1)×(n+1)` matrix.
fn bench_tell(rows: &mut Vec<BenchRecord>, reps: usize, n: usize, d: usize) {
    let xs = unit_points(n + 1, d, 7 + n as u64);
    let kernel = ArdKernel::new(KernelFamily::SquaredExponential, d);
    let theta = vec![0.0; d + 1];
    let noise = 1e-4;
    let k_full = kernel_matrix(&kernel, &theta, &xs, noise);
    let k_base = kernel_matrix(&kernel, &theta, &xs[..n], noise);
    let base = Cholesky::new(&k_base).expect("base factor");
    let cross = Vector::from(
        xs[..n]
            .iter()
            .map(|xi| kernel.eval(&theta, xi, &xs[n]))
            .collect::<Vec<f64>>(),
    );
    let diag = kernel.eval(&theta, &xs[n], &xs[n]) + noise;

    let (full_s, full) = time_best(reps, || Cholesky::new(&k_full).expect("full factor"));
    let (inc_s, inc) = time_best(reps, || {
        let mut chol = base.clone();
        chol.extend(&cross, diag).expect("rank-1 extend");
        chol
    });
    // The two factorizations of the same matrix agree to roundoff, not
    // bit for bit (different operation order): gate on relative log-det.
    let rel = (full.log_det() - inc.log_det()).abs() / full.log_det().abs().max(1.0);
    rows.push(BenchRecord::from_seconds(
        format!("tell_rank1_vs_full_n{n}_d{d}"),
        full_s,
        inc_s,
        rel <= 1e-10,
    ));
}

/// One penalization inner loop at size `n` with `b` busy points: factor
/// stack push/pop vs legacy clone-and-augment.
fn bench_pseudo_loop(rows: &mut Vec<BenchRecord>, reps: usize, n: usize, d: usize, b: usize) {
    let xs = unit_points(n, d, 31);
    let ys: Vec<f64> = xs
        .iter()
        .map(|p| {
            p.iter()
                .enumerate()
                .map(|(i, v)| (v * (i + 1) as f64).sin())
                .sum()
        })
        .collect();
    let gp = Gp::fit_with_params(
        xs,
        ys,
        KernelFamily::SquaredExponential,
        vec![0.0; d + 1],
        (1e-4f64).ln(),
    )
    .expect("fits");
    let busy = unit_points(b, d, 57);
    let probe = vec![0.37; d];

    let (legacy_s, legacy) = time_best(reps, || gp.augment(&busy).expect("augments"));
    let mut inc = IncrementalGp::new(gp.clone());
    let (stack_s, _) = time_best(reps, || {
        for p in &busy {
            inc.push_pseudo_mean(p.clone()).expect("pushes");
        }
        inc.pop_all_pseudo();
        inc.n_base()
    });
    // Bit-identity verdict outside the timed region: the pushed stack
    // must reproduce the cloned augmentation exactly.
    for p in &busy {
        inc.push_pseudo_mean(p.clone()).expect("pushes");
    }
    let identical = {
        let a = legacy.predict(&probe);
        let c = inc.gp().predict(&probe);
        a.mean.to_bits() == c.mean.to_bits() && a.variance.to_bits() == c.variance.to_bits()
    };
    inc.pop_all_pseudo();
    rows.push(BenchRecord::from_seconds(
        format!("pseudo_stack_vs_clone_augment_n{n}_d{d}_b{b}"),
        legacy_s,
        stack_s,
        identical,
    ));
}

fn main() {
    let reps: usize = std::env::var("EASYBO_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    println!(
        "Incremental-factorization benchmark: {reps} repetitions, {} host thread(s)",
        host_threads()
    );

    let mut rows = Vec::new();
    for n in [100, 200, 400, 800] {
        bench_tell(&mut rows, reps, n, 10);
    }
    bench_pseudo_loop(&mut rows, reps, 200, 10, 8);
    bench_pseudo_loop(&mut rows, reps, 400, 10, 8);

    println!(
        "{:<44} {:>12} {:>12} {:>9} {:>10}",
        "benchmark", "baseline_s", "candidate_s", "speedup", "identical"
    );
    for r in &rows {
        println!(
            "{:<44} {:>12.6} {:>12.6} {:>8.2}x {:>10}",
            r.name,
            r.baseline_ns / 1e9,
            r.candidate_ns / 1e9,
            r.speedup(),
            r.identical
        );
    }

    let json = bench_report(
        "incremental",
        reps,
        "baseline = full O(n^3) refactorize (tell rows) or clone-and-augment (pseudo rows); \
         candidate = rank-1 factor extend / factor-stack push+pop. Best-of-reps wall clock. \
         'identical' means bitwise-equal predictions for the pseudo rows and relative \
         log-det agreement <= 1e-10 for the tell rows (two factorizations of the same \
         matrix differ in operation order, so bitwise equality is not expected there).",
        &rows,
    );
    let path = write_bench_report("BENCH_incremental.json", &json);
    println!("wrote {path}");

    assert!(
        rows.iter().all(|r| r.identical),
        "incremental results must match the full-refactorize path"
    );
    let tell_400 = rows
        .iter()
        .find(|r| r.name.starts_with("tell_rank1_vs_full_n400"))
        .expect("n=400 tell row");
    assert!(
        tell_400.speedup() >= 5.0,
        "rank-1 tell at n=400 must be at least 5x faster than a full refactorize, got {:.2}x",
        tell_400.speedup()
    );
}
