//! Criterion micro-benchmarks of the numerical kernels underpinning the
//! reproduction: Cholesky factorization, GP fitting and prediction,
//! pseudo-point augmentation, acquisition maximization and the circuit
//! models themselves.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use easybo_circuits::{class_e::ClassEPa, opamp::TwoStageOpAmp, Circuit};
use easybo_gp::{Gp, GpConfig, KernelFamily};
use easybo_linalg::{Cholesky, Matrix, Vector};
use easybo_opt::{sampling, Bounds, MultiStartMaximizer};
use rand::SeedableRng;

fn spd(n: usize) -> Matrix {
    let m = Matrix::from_fn(n, n, |i, j| {
        let h = (i * 31 + j * 17) % 23;
        h as f64 / 23.0 - 0.5
    });
    let mut a = m.matmul(&m.transpose());
    a.add_diagonal(n as f64);
    a
}

fn training_data(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let bounds = Bounds::unit_cube(d).expect("unit cube");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let xs = sampling::latin_hypercube(&bounds, n, &mut rng);
    let ys: Vec<f64> = xs
        .iter()
        .map(|p| {
            p.iter()
                .enumerate()
                .map(|(i, v)| (v * (i + 1) as f64).sin())
                .sum()
        })
        .collect();
    (xs, ys)
}

fn bench_cholesky(c: &mut Criterion) {
    for n in [50, 150] {
        let a = spd(n);
        c.bench_function(&format!("cholesky_{n}x{n}"), |b| {
            b.iter(|| Cholesky::new(std::hint::black_box(&a)).expect("SPD"))
        });
        let chol = Cholesky::new(&a).expect("SPD");
        let rhs = Vector::from_iter((0..n).map(|i| (i as f64).sin()));
        c.bench_function(&format!("cholesky_solve_{n}"), |b| {
            b.iter(|| chol.solve_vec(std::hint::black_box(&rhs)))
        });
    }
}

fn bench_gp(c: &mut Criterion) {
    let (xs, ys) = training_data(100, 10);
    c.bench_function("gp_fit_train_100x10", |b| {
        b.iter_batched(
            || (xs.clone(), ys.clone()),
            |(xs, ys)| Gp::fit(xs, ys, GpConfig::default()).expect("fits"),
            BatchSize::SmallInput,
        )
    });
    let gp = Gp::fit_with_params(
        xs.clone(),
        ys.clone(),
        KernelFamily::SquaredExponential,
        vec![0.0; 11],
        (1e-4f64).ln(),
    )
    .expect("fits");
    let q = vec![0.5; 10];
    c.bench_function("gp_predict_100x10", |b| {
        b.iter(|| gp.predict(std::hint::black_box(&q)))
    });
    let busy: Vec<Vec<f64>> = (0..4).map(|i| vec![0.1 * (i + 1) as f64; 10]).collect();
    c.bench_function("gp_augment_4_busy_points", |b| {
        b.iter(|| gp.augment(std::hint::black_box(&busy)).expect("augments"))
    });
}

fn bench_acquisition_maximization(c: &mut Criterion) {
    let (xs, ys) = training_data(100, 10);
    let gp = Gp::fit_with_params(
        xs,
        ys,
        KernelFamily::SquaredExponential,
        vec![0.0; 11],
        (1e-4f64).ln(),
    )
    .expect("fits");
    let bounds = Bounds::unit_cube(10).expect("unit cube");
    let maximizer = MultiStartMaximizer::new(384, 3, 120);
    c.bench_function("acq_maximize_weighted_10d", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        b.iter(|| {
            maximizer.maximize(&bounds, &mut rng, |p| {
                easybo::acquisition::weighted(&gp, p, 0.7)
            })
        })
    });
}

fn bench_circuits(c: &mut Criterion) {
    let amp = TwoStageOpAmp::new();
    let x_amp = amp.bounds().center();
    c.bench_function("opamp_fom_eval", |b| {
        b.iter(|| amp.fom(std::hint::black_box(&x_amp)))
    });
    let pa = ClassEPa::new();
    let x_pa = pa.bounds().center();
    c.bench_function("class_e_fom_eval", |b| {
        b.iter(|| pa.fom(std::hint::black_box(&x_pa)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cholesky, bench_gp, bench_acquisition_maximization, bench_circuits
}
criterion_main!(benches);
