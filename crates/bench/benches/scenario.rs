//! Scenario-zoo benchmark: paper-style rows for the under-benchmarked
//! zoo circuits (LDO, ring oscillator) plus parallelism bit-identity
//! measurements for the constrained scenarios, written to
//! `BENCH_scenario.json` via the shared `bench_report` schema.
//!
//! Every record compares a parallelism-1 run (baseline) against a
//! parallelism-8 run (candidate) of the *same* seeded workload; the
//! `identical` flag is true iff the two runs produced byte-identical
//! best-so-far trace CSVs and identical datasets — the repo-wide
//! contract that the thread-count knob never changes results.

use std::time::Instant;

use easybo::{Algorithm, EasyBo, OptimizationResult};
use easybo_bench::*;
use easybo_exec::BlackBox;
use easybo_scenario::{zoo, Scenario};

/// Wall-clock one optimizer run at the given parallelism.
fn timed_run(opt: &EasyBo, bb: &dyn BlackBox) -> (OptimizationResult, f64) {
    let t0 = Instant::now();
    let result = opt.run_blackbox(bb).expect("bench run must succeed");
    (result, t0.elapsed().as_secs_f64())
}

/// Parallelism {1, 8} bit-identity record for a plain zoo circuit.
fn circuit_record(name: &str, bb: &dyn BlackBox, evals: usize, seed: u64) -> BenchRecord {
    let mut runs = Vec::new();
    for par in [1usize, 8] {
        let mut opt = EasyBo::new(bb.bounds().clone());
        opt.batch_size(5)
            .initial_points(16.min(evals / 2))
            .max_evals(evals)
            .seed(seed)
            .parallelism(par);
        runs.push(timed_run(&opt, bb));
    }
    let (base, cand) = (&runs[0], &runs[1]);
    let identical = base.0.trace.to_csv() == cand.0.trace.to_csv() && base.0.data == cand.0.data;
    BenchRecord::from_seconds(format!("{name}_par1_vs_par8"), base.1, cand.1, identical)
}

/// Parallelism {1, 8} bit-identity record for a constrained scenario.
fn scenario_record(scenario: &Scenario, evals: usize, seed: u64) -> BenchRecord {
    let mut runs = Vec::new();
    for par in [1usize, 8] {
        let mut opt = scenario.optimizer();
        opt.batch_size(5)
            .initial_points(16.min(evals / 2))
            .max_evals(evals)
            .seed(seed)
            .parallelism(par);
        let t0 = Instant::now();
        let outcome = scenario.run_with(&opt).expect("scenario run must succeed");
        runs.push((outcome, t0.elapsed().as_secs_f64()));
    }
    let (base, cand) = (&runs[0], &runs[1]);
    let identical = base.0.result.trace.to_csv() == cand.0.result.trace.to_csv()
        && base.0.result.data == cand.0.result.data
        && base.0 == cand.0;
    BenchRecord::from_seconds(
        format!("{}_par1_vs_par8", scenario.name().replace('-', "_")),
        base.1,
        cand.1,
        identical,
    )
}

fn main() {
    let reps = reps();
    let evals = scaled(100);
    let n_init = 20.min(evals / 2);
    println!("Scenario zoo: {reps} repetitions, {evals} sims/run");

    // Paper-style rows for the zoo circuits that had none: sequential
    // EasyBO and the async batch-5 flavor on the LDO and the ring VCO.
    let mut rows = Vec::new();
    for (bb, seed) in [
        (Box::new(ldo_blackbox()) as Box<dyn BlackBox>, 77u64),
        (Box::new(ring_osc_blackbox()) as Box<dyn BlackBox>, 78u64),
    ] {
        for (algo, batch) in [(Algorithm::EasyBoSeq, 1), (Algorithm::EasyBo, 5)] {
            let runs = run_cell(algo, bb.as_ref(), batch, evals, n_init, 0, reps, seed);
            let label = format!("{}/{}", bb.name(), algo.label(batch));
            rows.push(summarize(label.clone(), &runs));
            eprintln!("done: {label}");
        }
    }
    print_table("Zoo circuits: LDO and ring oscillator", &rows);

    // Bit-identity across the thread-count knob, plain and constrained.
    let id_evals = scaled(60);
    let records = vec![
        circuit_record("ldo", &ldo_blackbox(), id_evals, 101),
        circuit_record("ring_osc", &ring_osc_blackbox(), id_evals, 102),
        scenario_record(&zoo::matched_opamp(), id_evals, 103),
        scenario_record(&zoo::multicorner_ldo(), id_evals, 104),
    ];
    for r in &records {
        println!(
            "{:<32} base {:>8.2}s cand {:>8.2}s speedup {:>5.2}x identical={}",
            r.name,
            r.baseline_ns / 1e9,
            r.candidate_ns / 1e9,
            r.speedup(),
            r.identical
        );
        assert!(r.identical, "{}: parallelism changed the results", r.name);
    }

    let json = bench_report(
        "scenario",
        reps,
        "baseline: parallelism 1; candidate: parallelism 8, same seeds. \
         identical requires byte-equal trace CSVs and equal datasets.",
        &records,
    );
    let path = write_bench_report("BENCH_scenario.json", &json);
    println!("wrote {path}");
}
