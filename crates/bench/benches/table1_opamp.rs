//! Regenerates **Table I** of the paper: optimization results and
//! simulation time of the two-stage operational amplifier.
//!
//! Matrix: DE (20000 sims), LCB / EI / sequential EasyBO (150 sims), and
//! {pBO, pHCBO, EasyBO-S, EasyBO-A, EasyBO-SP, EasyBO} plus the async
//! portfolio from the literature {EpsGreedy, PessBO, StdBO} at batch
//! sizes {5, 10, 15} (150 sims, 20 initial points), each repeated
//! `EASYBO_REPS` times.
//!
//! With `EASYBO_ABLATE=lambda`, adds the λ-sweep ablation for the κ range
//! of the EasyBO acquisition (design-choice ablation from DESIGN.md).

use easybo::Algorithm;
use easybo_bench::*;

fn main() {
    let reps = reps();
    let bb = opamp_blackbox();
    let max_evals = scaled(150);
    let n_init = 20.min(max_evals / 2);
    let de_evals = if fast_mode() { 2000 } else { 20_000 };
    println!(
        "Table I reproduction: op-amp, {reps} repetitions, {max_evals} sims/run (DE: {de_evals})"
    );

    let mut rows = Vec::new();

    // Sequential block.
    for algo in [
        Algorithm::De,
        Algorithm::Lcb,
        Algorithm::Ei,
        Algorithm::EasyBoSeq,
    ] {
        let runs = run_cell(algo, &bb, 1, max_evals, n_init, de_evals, reps, 11);
        rows.push(summarize(algo.label(1), &runs));
        eprintln!("done: {}", algo.label(1));
    }

    // Batch block.
    let mut sync_async: Vec<(usize, f64, f64)> = Vec::new();
    for &batch in &batch_sizes() {
        let mut sp_time = 0.0;
        let mut full_time = 0.0;
        for algo in [
            Algorithm::Pbo,
            Algorithm::Phcbo,
            Algorithm::EasyBoS,
            Algorithm::EasyBoA,
            Algorithm::EasyBoSp,
            Algorithm::EasyBo,
            Algorithm::EpsGreedy,
            Algorithm::PessimisticBo,
            Algorithm::StandardBo,
        ] {
            let runs = run_cell(algo, &bb, batch, max_evals, n_init, 0, reps, 11);
            let row = summarize(algo.label(batch), &runs);
            if algo == Algorithm::EasyBoSp {
                sp_time = row.time_seconds;
            }
            if algo == Algorithm::EasyBo {
                full_time = row.time_seconds;
            }
            rows.push(row);
            eprintln!("done: {}", algo.label(batch));
        }
        sync_async.push((batch, sp_time, full_time));
    }

    print_table(
        "TABLE I: optimization results and simulation time (op-amp)",
        &rows,
    );

    // Headline derived numbers (paper: 9.2% / 12.7% / 13.7% time reduction
    // async vs sync; 134x-1935x speed-up vs DE).
    println!("\n--- derived speed-ups ---");
    let de_time = rows
        .iter()
        .find(|r| r.label == "DE")
        .map(|r| r.time_seconds)
        .unwrap_or(0.0);
    for (batch, sp, full) in &sync_async {
        if *sp > 0.0 && *full > 0.0 {
            println!(
                "B={batch}: async vs sync time reduction {:.1}% (paper: 9.2/12.7/13.7%), speed-up vs DE {:.0}x",
                100.0 * (sp - full) / sp,
                de_time / full
            );
        }
    }

    // Optional λ ablation.
    if std::env::var("EASYBO_ABLATE").as_deref() == Ok("lambda") {
        println!("\n--- ablation: κ range λ for EasyBO-5 ---");
        let mut ab_rows = Vec::new();
        for lambda in [0.0, 2.0, 6.0, 20.0] {
            let runs: Vec<_> = (0..reps)
                .map(|rep| {
                    use easybo::policies::{AcqOptConfig, EasyBoAsyncPolicy};
                    use easybo_exec::{BlackBox, VirtualExecutor};
                    use easybo_opt::sampling;
                    use rand::SeedableRng;
                    let seed = 900u64 + rep as u64;
                    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                    let init = sampling::latin_hypercube(bb.bounds(), n_init, &mut rng);
                    let mut p = EasyBoAsyncPolicy::with_configs(
                        bb.bounds().clone(),
                        true,
                        lambda,
                        seed,
                        Default::default(),
                        AcqOptConfig::for_dim(bb.bounds().dim()),
                    );
                    VirtualExecutor::new(5).run_async(&bb, &init, max_evals, &mut p)
                })
                .collect();
            ab_rows.push(summarize(format!("lambda={lambda}"), &runs));
        }
        print_table("ABLATION: EasyBO-5 vs lambda", &ab_rows);
    }
}
