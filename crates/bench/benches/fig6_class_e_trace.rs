//! Regenerates **Fig. 6** of the paper: optimization results of the
//! class-E power amplifier vs wall-clock time, batch size 15.
//!
//! Prints the mean best-so-far series of pBO-15, pHCBO-15 and EasyBO-15,
//! plus the time reduction to the common target (paper: 80.0% vs pBO,
//! 86.4% vs pHCBO, i.e. up to 7.35x speed-up).

use easybo::Algorithm;
use easybo_bench::*;

fn main() {
    let reps = reps().min(10);
    let bb = class_e_blackbox();
    let max_evals = scaled(450);
    let n_init = 20.min(max_evals / 2);
    let batch = 15;
    println!("Fig. 6 reproduction: class-E best-FOM vs wall-clock, B={batch}, {reps} reps");

    let algos = [Algorithm::Pbo, Algorithm::Phcbo, Algorithm::EasyBo];
    let mut traces = Vec::new();
    let mut finals = Vec::new();
    for algo in algos {
        let runs = run_cell(algo, &bb, batch, max_evals, n_init, 0, reps, 57);
        let label = algo.label(batch);
        let trace = mean_trace(&runs, 30);
        finals.push((label.clone(), trace.last().map(|&(_, v)| v).unwrap_or(0.0)));
        print_trace(&label, &trace);
        traces.push((label, trace));
        eprintln!("done: {}", algo.label(batch));
    }

    // Times to reach fractions of the common target (the worst final mean
    // across algorithms). The 100% level is reached by its defining
    // algorithm only at the very end, so the 90/95% levels are the
    // informative mid-run comparison.
    let target_full = finals.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    for frac in [0.90, 0.95, 1.0] {
        let target = target_full * frac - 1e-9;
        println!(
            "\n--- time to reach {:.0}% of common target (FOM {target:.3}) ---",
            frac * 100.0
        );
        let mut easybo_t = None;
        let mut others = Vec::new();
        for (label, trace) in &traces {
            let t = time_to_target(trace, target);
            println!("{label:<12} {}", t.map_or("never".into(), format_hms));
            if label.starts_with("EasyBO") {
                easybo_t = t;
            } else {
                others.push((label.clone(), t));
            }
        }
        if let Some(te) = easybo_t {
            for (label, t) in others {
                if let Some(t) = t {
                    println!(
                        "  EasyBO-15 time reduction vs {label}: {:.1}% ({:.2}x) [paper headline: 80.0% vs pBO, 86.4% vs pHCBO (7.35x)]",
                        100.0 * (t - te) / t,
                        t / te
                    );
                }
            }
        }
    }
}
