//! Span-instrumentation overhead benchmark.
//!
//! Guards the zero-cost contract of the hierarchical span layer along
//! three axes:
//!
//! 1. the per-call cost of opening a span on a *disabled* telemetry
//!    handle (must be nanoseconds — no allocation, no TLS);
//! 2. a full optimizer run with the default disabled handle vs the same
//!    run with a recording handle attached — recording must not perturb
//!    the optimization trajectory (bit-identical best value), and the
//!    derived disabled-span overhead (spans-per-run x per-call cost)
//!    must stay under 2% of the run's wall clock;
//! 3. the raw recording throughput of an enabled handle.
//!
//! Prints a table and writes `BENCH_spans.json` at the repository root
//! in the shared report schema. Repetition count comes from
//! `EASYBO_REPS` (default 5); each cell reports the best (minimum)
//! wall-clock across repetitions.

use std::hint::black_box;
use std::time::Instant;

use easybo::EasyBo;
use easybo_bench::{bench_report, write_bench_report, BenchRecord};
use easybo_opt::Bounds;
use easybo_telemetry::Telemetry;

fn objective(x: &[f64]) -> f64 {
    (-((x[0] - 0.35).powi(2) + (x[1] - 0.65).powi(2))).exp()
}

/// Best-of-`reps` wall-clock of `f`, in seconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

const SPIN_ITERS: u64 = 10_000_000;

/// Per-call cost of a disabled span: a spin loop with and without the
/// `span()` call. Returns the per-call cost in seconds.
fn bench_disabled_span_call(rows: &mut Vec<BenchRecord>, reps: usize) -> f64 {
    let telemetry = Telemetry::disabled();
    let (base_s, _) = time_best(reps, || {
        let mut acc = 0u64;
        for i in 0..SPIN_ITERS {
            acc = acc.wrapping_add(black_box(i));
        }
        acc
    });
    let (span_s, _) = time_best(reps, || {
        let mut acc = 0u64;
        for i in 0..SPIN_ITERS {
            let _g = telemetry.span("bench");
            acc = acc.wrapping_add(black_box(i));
        }
        acc
    });
    rows.push(BenchRecord::from_seconds(
        format!("spin_loop_vs_disabled_span_x{SPIN_ITERS}"),
        base_s,
        span_s,
        true,
    ));
    (span_s - base_s).max(0.0) / SPIN_ITERS as f64
}

/// Full optimizer run with the default (disabled) handle vs a recording
/// handle. Returns `(run_seconds_disabled, spans_recorded)`.
fn bench_full_run(rows: &mut Vec<BenchRecord>, reps: usize) -> (f64, usize) {
    let optimizer = || {
        let mut opt = EasyBo::new(Bounds::unit_cube(2).expect("unit cube"));
        opt.batch_size(4).initial_points(6).max_evals(24).seed(11);
        opt
    };
    let (off_s, off) = time_best(reps, || optimizer().run(objective).expect("runs"));
    let mut spans = 0usize;
    let (on_s, on) = time_best(reps, || {
        let (telemetry, recorder) = Telemetry::recording();
        let mut opt = optimizer();
        opt.telemetry(telemetry);
        let result = opt.run(objective).expect("runs");
        spans = result.report.summary.as_ref().map_or(0, |s| s.spans);
        drop(recorder);
        result
    });
    rows.push(BenchRecord::from_seconds(
        "easybo_run_recording_vs_disabled",
        off_s,
        on_s,
        off.best_value.to_bits() == on.best_value.to_bits() && off.data == on.data,
    ));
    (off_s, spans)
}

/// Raw span recording throughput on an enabled handle (10k nested pairs).
fn bench_enabled_recording(rows: &mut Vec<BenchRecord>, reps: usize) {
    const N: usize = 10_000;
    let disabled = Telemetry::disabled();
    let (off_s, _) = time_best(reps, || {
        for _ in 0..N {
            let _outer = disabled.span("outer");
            let _inner = disabled.span("inner");
        }
    });
    let (on_s, _) = time_best(reps, || {
        let (telemetry, recorder) = Telemetry::recording();
        for _ in 0..N {
            let _outer = telemetry.span("outer");
            let _inner = telemetry.span("inner");
        }
        telemetry.flush();
        recorder
    });
    rows.push(BenchRecord::from_seconds(
        format!("enabled_recording_vs_disabled_x{N}_nested_pairs"),
        off_s,
        on_s,
        true,
    ));
}

fn main() {
    let reps: usize = std::env::var("EASYBO_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    println!("Span overhead benchmark: {reps} repetitions");

    let mut rows = Vec::new();
    let per_call_s = bench_disabled_span_call(&mut rows, reps);
    let (run_s, spans) = bench_full_run(&mut rows, reps);
    bench_enabled_recording(&mut rows, reps);

    println!(
        "{:<48} {:>12} {:>12} {:>10} {:>10}",
        "benchmark", "baseline_s", "candidate_s", "overhead", "identical"
    );
    for r in &rows {
        println!(
            "{:<48} {:>12.6} {:>12.6} {:>9.2}% {:>10}",
            r.name,
            r.baseline_ns / 1e9,
            r.candidate_ns / 1e9,
            r.overhead() * 100.0,
            r.identical
        );
    }
    let disabled_fraction = spans as f64 * per_call_s / run_s.max(1e-12);
    println!(
        "disabled span call: {:.2} ns; {spans} spans/run -> {:.4}% of run wall clock",
        per_call_s * 1e9,
        disabled_fraction * 100.0
    );

    let json = bench_report(
        "spans",
        reps,
        &format!(
            "baseline = span-free / disabled-telemetry path, candidate = span-instrumented \
             path; best-of-reps wall clock. Disabled span call costs {:.2} ns; at {spans} \
             spans per toy run that is {:.4}% of the run's wall clock (budget: 2%). The \
             recording row must be bit-identical in trajectory: telemetry observes the run, \
             it never steers it.",
            per_call_s * 1e9,
            disabled_fraction * 100.0
        ),
        &rows,
    );
    let path = write_bench_report("BENCH_spans.json", &json);
    println!("wrote {path}");

    assert!(
        rows.iter().all(|r| r.identical),
        "recording telemetry must not perturb the optimization trajectory"
    );
    assert!(
        disabled_fraction < 0.02,
        "disabled-span overhead {disabled_fraction:.4} exceeds the 2% budget"
    );
}
