//! Fault-tolerance overhead micro-benchmarks.
//!
//! The retry layer's contract mirrors telemetry's: "free when off". A
//! clean black box driven through `run_async_resilient` with
//! `RetryPolicy::none()` must run at the speed of the legacy entry
//! point, and even the full default policy (3 attempts, backoff,
//! outcome classification) should cost only the per-attempt bookkeeping
//! when no fault ever fires. A third workload prices a realistic chaos
//! regime for scale.

use criterion::{criterion_group, criterion_main, Criterion};
use easybo_exec::{
    AsyncPolicy, BusyPoint, CostedFunction, Dataset, FaultPlan, FaultyBlackBox, RetryPolicy,
    SimTimeModel, VirtualExecutor,
};
use easybo_opt::Bounds;
use easybo_telemetry::Telemetry;

/// Trivial policy: isolates the executor's retry bookkeeping from model
/// costs.
struct Walker(f64);
impl AsyncPolicy for Walker {
    fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
        self.0 = (self.0 + 0.31) % 1.0;
        vec![self.0]
    }
}

fn cheap_blackbox() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let bounds = Bounds::unit_cube(1).unwrap();
    let time = SimTimeModel::new(&bounds, 25.0, 0.3, 9);
    CostedFunction::new("cheap", bounds, time, |x: &[f64]| 1.0 - (x[0] - 0.6).abs())
}

const EVALS: usize = 400;

fn bench_retry_path_overhead(c: &mut Criterion) {
    let bb = cheap_blackbox();
    let init = [vec![0.4]];

    // Seed entry point: no retry machinery anywhere.
    c.bench_function("executor_hot_loop_legacy", |b| {
        b.iter(|| VirtualExecutor::new(4).run_async(&bb, &init, EVALS, &mut Walker(0.0)))
    });

    // Resilient driver, `none` policy: the bit-identical compatibility
    // mode every existing caller now routes through.
    c.bench_function("executor_hot_loop_retry_none", |b| {
        b.iter(|| {
            VirtualExecutor::new(4).run_async_resilient(
                &bb,
                &init,
                EVALS,
                &mut Walker(0.0),
                &RetryPolicy::none(),
                &Telemetry::disabled(),
            )
        })
    });

    // Full default policy on a clean black box: fault rate 0, so this
    // prices exactly the retry-path bookkeeping (outcome
    // classification, attempt counting, timeout checks).
    c.bench_function("executor_hot_loop_retry_default_clean", |b| {
        b.iter(|| {
            VirtualExecutor::new(4).run_async_resilient(
                &bb,
                &init,
                EVALS,
                &mut Walker(0.0),
                &RetryPolicy::default(),
                &Telemetry::disabled(),
            )
        })
    });

    // A realistic chaos regime, for scale: 10% failures retried with
    // backoff through the deterministic fault injector.
    let plan = FaultPlan {
        seed: 13,
        fail_rate: 0.1,
        ..FaultPlan::default()
    };
    let faulty = FaultyBlackBox::new(cheap_blackbox(), plan);
    c.bench_function("executor_hot_loop_faults_10pct", |b| {
        b.iter(|| {
            VirtualExecutor::new(4).run_async_resilient(
                &faulty,
                &init,
                EVALS,
                &mut Walker(0.0),
                &RetryPolicy::default().backoff(5.0, 2.0),
                &Telemetry::disabled(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_retry_path_overhead
}
criterion_main!(benches);
