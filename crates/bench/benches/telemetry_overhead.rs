//! Telemetry overhead micro-benchmarks.
//!
//! The observability layer's contract is "free when off": a disabled
//! handle short-circuits on an `Option` check with no allocation, so
//! instrumented code paths must run at seed speed. Two workloads:
//!
//! 1. the Fig. 1 schedule reproduction (full EasyBO policy, GP refits
//!    included) — the acceptance check is that the disabled-telemetry
//!    run stays within 2% of the uninstrumented entry point;
//! 2. a policy-free executor hot loop (hundreds of cheap evaluations)
//!    where per-event costs are not drowned out by GP algebra, compared
//!    across no telemetry / disabled handle / in-memory recorder.

use criterion::{criterion_group, criterion_main, Criterion};
use easybo::policies::EasyBoAsyncPolicy;
use easybo_bench::opamp_blackbox;
use easybo_exec::{
    AsyncPolicy, BlackBox, BusyPoint, CostedFunction, Dataset, SimTimeModel, VirtualExecutor,
};
use easybo_opt::{sampling, Bounds};
use easybo_telemetry::Telemetry;
use rand::SeedableRng;

fn fig1_init(bb: &dyn BlackBox) -> Vec<Vec<f64>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    sampling::latin_hypercube(bb.bounds(), 6, &mut rng)
}

fn bench_fig1_schedule(c: &mut Criterion) {
    let bb = opamp_blackbox();
    let init = fig1_init(&bb);

    // Seed entry point: no telemetry parameter anywhere.
    c.bench_function("fig1_async_schedule_no_telemetry", |b| {
        b.iter(|| {
            let mut policy = EasyBoAsyncPolicy::new(bb.bounds().clone(), true, 7);
            VirtualExecutor::new(3).run_async(&bb, &init, 18, &mut policy)
        })
    });

    // Instrumented entry point, telemetry disabled — the default for
    // every run that does not opt in. Must be within 2% of the above.
    c.bench_function("fig1_async_schedule_disabled_telemetry", |b| {
        b.iter(|| {
            let mut policy = EasyBoAsyncPolicy::new(bb.bounds().clone(), true, 7);
            VirtualExecutor::new(3).run_async_with(
                &bb,
                &init,
                18,
                &mut policy,
                &Telemetry::disabled(),
            )
        })
    });

    // Full recording, for scale: how much observing actually costs.
    c.bench_function("fig1_async_schedule_recorder", |b| {
        b.iter(|| {
            let (telemetry, _recorder) = Telemetry::recording();
            let mut policy = EasyBoAsyncPolicy::new(bb.bounds().clone(), true, 7);
            VirtualExecutor::new(3).run_async_with(&bb, &init, 18, &mut policy, &telemetry)
        })
    });
}

/// Trivial policy: isolates the executor's per-event bookkeeping from
/// model costs.
struct Walker(f64);
impl AsyncPolicy for Walker {
    fn select_next(&mut self, _d: &Dataset, _b: &[BusyPoint]) -> Vec<f64> {
        self.0 = (self.0 + 0.31) % 1.0;
        vec![self.0]
    }
}

fn cheap_blackbox() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let bounds = Bounds::unit_cube(1).unwrap();
    let time = SimTimeModel::new(&bounds, 25.0, 0.3, 9);
    CostedFunction::new("cheap", bounds, time, |x: &[f64]| 1.0 - (x[0] - 0.6).abs())
}

fn bench_executor_hot_loop(c: &mut Criterion) {
    let bb = cheap_blackbox();
    let evals = 512;

    c.bench_function("hot_loop_512_evals_no_telemetry", |b| {
        b.iter(|| VirtualExecutor::new(4).run_async(&bb, &[], evals, &mut Walker(0.0)))
    });
    c.bench_function("hot_loop_512_evals_disabled_telemetry", |b| {
        b.iter(|| {
            VirtualExecutor::new(4).run_async_with(
                &bb,
                &[],
                evals,
                &mut Walker(0.0),
                &Telemetry::disabled(),
            )
        })
    });
    c.bench_function("hot_loop_512_evals_recorder", |b| {
        b.iter(|| {
            let (telemetry, _recorder) = Telemetry::recording();
            VirtualExecutor::new(4).run_async_with(&bb, &[], evals, &mut Walker(0.0), &telemetry)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1_schedule, bench_executor_hot_loop
}
criterion_main!(benches);
