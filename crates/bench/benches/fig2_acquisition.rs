//! Regenerates **Fig. 2** of the paper: (a) the location selected by the
//! weighted acquisition `(1-w)·μ + w·σ` as a function of `w` on a 1-d GP,
//! showing that small-`w` acquisitions cluster at the posterior-mean
//! maximizer; and (b) the sampling density of `w = κ/(κ+1)`, `κ ~ U[0, 6]`,
//! showing the concentration near `w = 1`.

use easybo::acquisition;
use easybo::sample_kappa_weight;
use easybo_gp::{Gp, KernelFamily};
use easybo_opt::{Bounds, MultiStartMaximizer};
use rand::SeedableRng;

fn main() {
    // A 1-d GP over [0, 1] with a clear interior maximum and an unexplored
    // right tail — the Fig. 2 setting.
    let xs: Vec<Vec<f64>> = [0.0, 0.15, 0.3, 0.45, 0.6]
        .iter()
        .map(|&v| vec![v])
        .collect();
    let ys: Vec<f64> = xs.iter().map(|p| (3.5 * p[0]).sin()).collect();
    let gp = Gp::fit_with_params(
        xs,
        ys,
        KernelFamily::SquaredExponential,
        vec![(0.15f64).ln(), 0.0],
        (1e-6f64).ln(),
    )
    .expect("toy GP fits");

    println!("Fig. 2 reproduction (a): argmax of (1-w)*mu + w*sigma over [0,1] vs w");
    println!("{:>6} {:>12} {:>12}", "w", "x_selected", "acq_value");
    let bounds = Bounds::unit_cube(1).expect("1-d cube");
    let maximizer = MultiStartMaximizer::new(512, 4, 120);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for i in 0..=20 {
        let w = i as f64 / 20.0;
        let best = maximizer.maximize(&bounds, &mut rng, |p| acquisition::weighted(&gp, p, w));
        println!("{w:>6.2} {:>12.4} {:>12.4}", best.x[0], best.value);
    }
    println!(
        "\n(small w: selections pile onto the posterior-mean maximizer;\n\
         large w: selections move with the uncertainty — hence EasyBO's\n\
         density boost near w = 1)"
    );

    // (b) histogram of w = kappa/(kappa+1), kappa ~ U[0,6].
    println!("\nFig. 2 reproduction (b): sampling density of w = k/(k+1), k ~ U[0,6]");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let n = 200_000;
    let mut hist = [0usize; 20];
    for _ in 0..n {
        let w = sample_kappa_weight(6.0, &mut rng);
        hist[((w * 20.0) as usize).min(19)] += 1;
    }
    let max_count = *hist.iter().max().expect("non-empty") as f64;
    for (i, &c) in hist.iter().enumerate() {
        let lo = i as f64 / 20.0;
        let bar = "#".repeat((c as f64 / max_count * 60.0).round() as usize);
        println!(
            "w in [{:>4.2},{:>4.2}): {:>6.3} {}",
            lo,
            lo + 0.05,
            c as f64 / n as f64,
            bar
        );
    }
    println!("(density rises toward w_max = 6/7 ≈ 0.857 — matching the paper's Fig. 2)");
}
