//! Checkpoint overhead benchmark.
//!
//! Measures what the persistence layer costs along two axes:
//!
//! 1. the ask/tell session driver with no hook attached vs the legacy
//!    resilient loop — both must be bit-identical and within noise of
//!    each other, since `checkpoint_every = None` routes through the
//!    legacy entry point in production;
//! 2. a full `EasyBo` run with snapshots written every completed
//!    evaluation vs the same run with checkpointing disabled — the
//!    worst-case (k = 1) write amplification.
//!
//! Prints a table and writes `BENCH_checkpoint.json` at the repository
//! root with the measured times, relative overheads, snapshot size, and
//! a bit-identity verdict per comparison. Repetition count comes from
//! `EASYBO_REPS` (default 5); each cell reports the best (minimum)
//! wall-clock across repetitions.

use std::time::Instant;

use easybo::policies::EasyBoAsyncPolicy;
use easybo::EasyBo;
use easybo_bench::{bench_report, write_bench_report, BenchRecord};
use easybo_exec::{CostedFunction, RetryPolicy, SimTimeModel, VirtualExecutor};
use easybo_opt::{sampling, Bounds};
use easybo_telemetry::Telemetry;
use rand::SeedableRng;

fn objective(x: &[f64]) -> f64 {
    (-((x[0] - 0.35).powi(2) + (x[1] - 0.65).powi(2))).exp()
}

/// Best-of-`reps` wall-clock of `f`, in seconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

/// Session driver with no hook vs the legacy resilient loop, full
/// EasyBO policy (GP refits included).
fn bench_session_driver(rows: &mut Vec<BenchRecord>, reps: usize) {
    let bounds = Bounds::unit_cube(2).expect("unit cube");
    let time = SimTimeModel::new(&bounds, 20.0, 0.3, 5);
    let bb = CostedFunction::new("toy", bounds.clone(), time, objective);
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let init = sampling::latin_hypercube(&bounds, 6, &mut rng);
    let retry = RetryPolicy::default();
    let telemetry = Telemetry::disabled();

    let (legacy_s, legacy) = time_best(reps, || {
        let mut policy = EasyBoAsyncPolicy::new(bounds.clone(), true, 7);
        VirtualExecutor::new(4).run_async_resilient(&bb, &init, 24, &mut policy, &retry, &telemetry)
    });
    let (session_s, session) = time_best(reps, || {
        let mut policy = EasyBoAsyncPolicy::new(bounds.clone(), true, 7);
        VirtualExecutor::new(4)
            .run_session_resilient(&bb, &init, 24, &mut policy, &retry, &telemetry, None)
            .expect("no hook, no abort")
    });
    rows.push(BenchRecord::from_seconds(
        "session_driver_nohook_vs_legacy_loop",
        legacy_s,
        session_s,
        legacy.trace.to_csv() == session.trace.to_csv() && legacy.data == session.data,
    ));
}

/// Full optimizer run, snapshot every completed evaluation (k = 1, the
/// worst case) vs checkpointing disabled. Returns the snapshot size.
fn bench_checkpoint_writes(rows: &mut Vec<BenchRecord>, reps: usize) -> u64 {
    let path = std::env::temp_dir().join(format!("easybo-bench-ckpt-{}.snap", std::process::id()));
    let optimizer = || {
        let mut opt = EasyBo::new(Bounds::unit_cube(2).expect("unit cube"));
        opt.batch_size(4).initial_points(6).max_evals(24).seed(11);
        opt
    };

    let (off_s, off) = time_best(reps, || optimizer().run(objective).expect("runs"));
    let (on_s, on) = time_best(reps, || {
        let mut opt = optimizer();
        opt.checkpoint_to(&path).checkpoint_every(1);
        opt.run(objective).expect("runs")
    });
    let snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    std::fs::remove_file(&path).ok();
    rows.push(BenchRecord::from_seconds(
        "checkpoint_every_1_vs_disabled",
        off_s,
        on_s,
        off.trace.to_csv() == on.trace.to_csv() && off.data == on.data,
    ));
    snapshot_bytes
}

fn main() {
    let reps: usize = std::env::var("EASYBO_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    println!("Checkpoint overhead benchmark: {reps} repetitions");

    let mut rows = Vec::new();
    bench_session_driver(&mut rows, reps);
    let snapshot_bytes = bench_checkpoint_writes(&mut rows, reps);

    println!(
        "{:<40} {:>12} {:>12} {:>10} {:>10}",
        "benchmark", "baseline_s", "candidate_s", "overhead", "identical"
    );
    for r in &rows {
        println!(
            "{:<40} {:>12.6} {:>12.6} {:>9.1}% {:>10}",
            r.name,
            r.baseline_ns / 1e9,
            r.candidate_ns / 1e9,
            r.overhead() * 100.0,
            r.identical
        );
    }
    println!("snapshot size at max_evals=24, d=2: {snapshot_bytes} bytes");

    let json = bench_report(
        "checkpoint",
        reps,
        &format!(
            "baseline = checkpointing disabled (legacy path), candidate = session driver / \
             snapshot-per-eval; best-of-reps wall clock. Identical rows compare the full \
             best-so-far trace and dataset bit for bit. snapshot_bytes at max_evals=24, \
             d=2: {snapshot_bytes}."
        ),
        &rows,
    );
    let path = write_bench_report("BENCH_checkpoint.json", &json);
    println!("wrote {path}");

    assert!(
        rows.iter().all(|r| r.identical),
        "checkpoint-instrumented runs must be bit-identical to the plain path"
    );
}
