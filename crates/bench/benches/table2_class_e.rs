//! Regenerates **Table II** of the paper: optimization results and
//! simulation time of the class-E power amplifier.
//!
//! Matrix: DE (15000 sims), LCB / EI / sequential EasyBO (450 sims), and
//! {pBO, pHCBO, EasyBO-S, EasyBO-A, EasyBO-SP, EasyBO} plus the async
//! portfolio {EpsGreedy, PessBO, StdBO} at batch sizes {5, 10, 15}
//! (450 sims, 20 initial points), each repeated `EASYBO_REPS` times.
//! With `EASYBO_EXTENSIONS=1`, adds the BUCB and LP baselines.

use easybo::Algorithm;
use easybo_bench::*;

fn main() {
    let reps = reps();
    let bb = class_e_blackbox();
    let max_evals = scaled(450);
    let n_init = 20.min(max_evals / 2);
    let de_evals = if fast_mode() { 1500 } else { 15_000 };
    println!(
        "Table II reproduction: class-E PA, {reps} repetitions, {max_evals} sims/run (DE: {de_evals})"
    );

    let mut rows = Vec::new();

    for algo in [
        Algorithm::De,
        Algorithm::Lcb,
        Algorithm::Ei,
        Algorithm::EasyBoSeq,
    ] {
        let runs = run_cell(algo, &bb, 1, max_evals, n_init, de_evals, reps, 23);
        rows.push(summarize(algo.label(1), &runs));
        eprintln!("done: {}", algo.label(1));
    }

    let mut sync_async: Vec<(usize, f64, f64)> = Vec::new();
    let extensions = std::env::var("EASYBO_EXTENSIONS").as_deref() == Ok("1");
    for &batch in &batch_sizes() {
        let mut sp_time = 0.0;
        let mut full_time = 0.0;
        let mut algos = vec![
            Algorithm::Pbo,
            Algorithm::Phcbo,
            Algorithm::EasyBoS,
            Algorithm::EasyBoA,
            Algorithm::EasyBoSp,
            Algorithm::EasyBo,
            Algorithm::EpsGreedy,
            Algorithm::PessimisticBo,
            Algorithm::StandardBo,
        ];
        if extensions {
            algos.push(Algorithm::Bucb);
            algos.push(Algorithm::Lp);
        }
        for algo in algos {
            let runs = run_cell(algo, &bb, batch, max_evals, n_init, 0, reps, 23);
            let row = summarize(algo.label(batch), &runs);
            if algo == Algorithm::EasyBoSp {
                sp_time = row.time_seconds;
            }
            if algo == Algorithm::EasyBo {
                full_time = row.time_seconds;
            }
            rows.push(row);
            eprintln!("done: {}", algo.label(batch));
        }
        sync_async.push((batch, sp_time, full_time));
    }

    print_table(
        "TABLE II: optimization results and simulation time (class-E PA)",
        &rows,
    );

    // Paper: 26.7% / 35.7% / 40.0% time reduction vs pBO/pHCBO at B=5/10/15
    // ... the sync-vs-async reduction here compares EasyBO-SP vs EasyBO; and
    // up to 500x vs DE.
    println!("\n--- derived speed-ups ---");
    let de_time = rows
        .iter()
        .find(|r| r.label == "DE")
        .map(|r| r.time_seconds)
        .unwrap_or(0.0);
    for (batch, sp, full) in &sync_async {
        if *sp > 0.0 && *full > 0.0 {
            println!(
                "B={batch}: async vs sync time reduction {:.1}%, speed-up vs DE {:.0}x",
                100.0 * (sp - full) / sp,
                de_time / full
            );
        }
    }
}
