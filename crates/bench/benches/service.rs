//! Multi-session service throughput and residency benchmark.
//!
//! Measures the `SessionManager`'s ask/tell cycle cost along two axes:
//!
//! 1. per-cycle overhead at scale — 1 resident session vs 1000 open
//!    sessions squeezed through a 16-session residency budget (every
//!    cycle then pays fair-share selection plus LRU evict/rehydrate
//!    churn), asserting the memory bound `resident <= budget` holds at
//!    every step;
//! 2. the wire tax — the same session drained through a real loopback
//!    TCP socket (frame codec, CRC, lockstep RPC) vs direct in-process
//!    manager calls, asserting both produce the identical result.
//!
//! Prints a table (with asks/sec) and writes `BENCH_service.json` at
//! the repository root in the shared report schema. Repetition count
//! comes from `EASYBO_REPS` (default 5); each cell reports the best
//! (minimum) wall-clock across repetitions.

use std::time::Instant;

use easybo_bench::{bench_report, write_bench_report, BenchRecord};
use easybo_exec::{
    AsyncPolicy, BlackBox, BusyPoint, CostedFunction, Dataset, RetryPolicy, SimTimeModel,
};
use easybo_opt::Bounds;
use easybo_service::{ServiceServer, SessionManager, SessionSpec, WorkerClient};

/// Deterministic stateless policy: cheap enough that the benchmark
/// measures the manager, not the proposal math.
struct SweepPolicy;

impl AsyncPolicy for SweepPolicy {
    fn select_next(&mut self, data: &Dataset, busy: &[BusyPoint]) -> Vec<f64> {
        let n = (data.len() + busy.len()) as f64;
        vec![(0.13 + 0.07 * n).fract()]
    }
}

fn toy_bb() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let bounds = Bounds::unit_cube(1).unwrap();
    let time = SimTimeModel::new(&bounds, 12.0, 0.3, 5);
    CostedFunction::new("toy", bounds, time, |x: &[f64]| 1.0 - (x[0] - 0.4).abs())
}

fn toy_spec(fingerprint: u64, max_evals: usize) -> SessionSpec {
    SessionSpec {
        bench: "toy".to_string(),
        workers: 2,
        max_evals,
        init: vec![vec![0.2], vec![0.8]],
        retry: RetryPolicy::none(),
        fingerprint,
        policy: Box::new(|| Box::new(SweepPolicy)),
    }
}

/// Drains every session to completion with a single synthetic
/// connection, rehydrating evicted sessions as residency frees up.
/// Returns the number of ask/tell cycles; panics if the residency
/// bound is ever violated.
fn drain(m: &mut SessionManager, bb: &dyn BlackBox) -> u64 {
    let mut cycles = 0u64;
    while !m.all_done() {
        if let Some(w) = m.ask(1) {
            let e = w.evaluate(bb);
            m.tell(
                1,
                w.session,
                w.task,
                w.attempt,
                e.value,
                e.cost,
                e.resolved_outcome(),
            );
            cycles += 1;
        } else if let Some(&id) = m.evicted_ids().first() {
            m.rehydrate(id).expect("rehydrate evicted session");
        } else {
            panic!("no leasable work and nothing evicted, yet not all done");
        }
        assert!(
            m.resident_count() <= m.resident_budget(),
            "residency bound violated: {} > {}",
            m.resident_count(),
            m.resident_budget()
        );
    }
    cycles
}

/// Best-of-`reps` wall-clock of `f`, in seconds, plus the last output.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

/// Per-cycle seconds for one session of `max_evals` evaluations.
fn bench_single_session(reps: usize, max_evals: usize) -> (f64, u64) {
    let bb = toy_bb();
    let (secs, cycles) = time_best(reps, || {
        let mut m = SessionManager::new(4);
        let id = m.open_session(toy_spec(1, max_evals));
        let cycles = drain(&mut m, &bb);
        assert!(m.take_result(id).is_some());
        cycles
    });
    (secs / cycles as f64, cycles)
}

/// Per-cycle seconds for `n` sessions through a `budget`-bounded pool.
fn bench_many_sessions(reps: usize, n: u64, budget: usize, max_evals: usize) -> (f64, u64) {
    let bb = toy_bb();
    let (secs, cycles) = time_best(reps, || {
        let mut m = SessionManager::new(budget);
        let ids: Vec<u64> = (0..n)
            .map(|i| m.open_session(toy_spec(i, max_evals)))
            .collect();
        let cycles = drain(&mut m, &bb);
        assert_eq!(m.finished_count() as u64, n);
        assert!(m.stats().evictions >= n - budget as u64);
        for id in ids {
            assert!(m.take_result(id).is_some());
        }
        cycles
    });
    (secs / cycles as f64, cycles)
}

/// Per-cycle seconds for one session drained over a loopback socket by
/// one remote worker; returns the session's best value for the
/// identity check.
fn bench_socket_session(reps: usize, max_evals: usize) -> (f64, u64, f64) {
    let (secs, (cycles, best)) = time_best(reps, || {
        let mut server =
            ServiceServer::start(SessionManager::new(4), "127.0.0.1:0", None).expect("bind");
        let manager = server.manager();
        let id = {
            let mut m = manager.lock().expect("manager lock");
            m.open_session(toy_spec(1, max_evals))
        };
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || {
            let mut w = WorkerClient::connect(addr);
            w.register("toy", Box::new(toy_bb()));
            w.run()
        });
        let summary = handle.join().expect("worker thread").expect("worker loop");
        server.stop();
        let mut m = manager.lock().expect("manager lock");
        let result = m.take_result(id).expect("session finished");
        (summary.evaluated, result.best_value())
    });
    (secs / cycles as f64, cycles, best)
}

fn main() {
    let reps: usize = std::env::var("EASYBO_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    let mut rows = Vec::new();

    // Axis 1: 1 vs 1000 resident sessions under a budget of 16.
    let (single_cycle_s, single_cycles) = bench_single_session(reps, 64);
    let (many_cycle_s, many_cycles) = bench_many_sessions(reps, 1000, 16, 8);
    rows.push(BenchRecord::from_seconds(
        "ask_tell_cycle_1_session_vs_1000_sessions_budget16",
        single_cycle_s,
        many_cycle_s,
        true,
    ));
    println!(
        "ask/tell cycle: 1 session {:.2} us/cycle ({:.0} asks/sec, {single_cycles} cycles) | \
         1000 sessions {:.2} us/cycle ({:.0} asks/sec, {many_cycles} cycles)",
        single_cycle_s * 1e6,
        1.0 / single_cycle_s,
        many_cycle_s * 1e6,
        1.0 / many_cycle_s,
    );

    // Axis 2: direct manager calls vs the same run over a real socket.
    let bb = toy_bb();
    let mut direct = SessionManager::new(4);
    let direct_id = direct.open_session(toy_spec(1, 64));
    drain(&mut direct, &bb);
    let direct_best = direct
        .take_result(direct_id)
        .expect("finished")
        .best_value();
    let (socket_cycle_s, socket_cycles, socket_best) = bench_socket_session(reps, 64);
    rows.push(BenchRecord::from_seconds(
        "ask_tell_cycle_in_process_vs_loopback_socket",
        single_cycle_s,
        socket_cycle_s,
        socket_best == direct_best,
    ));
    println!(
        "wire tax: in-process {:.2} us/cycle vs loopback socket {:.2} us/cycle \
         ({:.0} asks/sec, {socket_cycles} cycles, identical best: {})",
        single_cycle_s * 1e6,
        socket_cycle_s * 1e6,
        1.0 / socket_cycle_s,
        socket_best == direct_best,
    );
    assert_eq!(
        socket_best, direct_best,
        "socket run diverged from the in-process run"
    );

    let json = bench_report(
        "service",
        reps,
        "ask/tell cycle cost: 1 vs 1000 resident sessions (budget 16, LRU \
         evict/rehydrate churn, residency bound asserted every cycle), and \
         in-process vs loopback-socket dispatch",
        &rows,
    );
    let path = write_bench_report("BENCH_service.json", &json);
    println!("wrote {path}");
}
