//! Regenerates **Fig. 1** of the paper: the asynchronous vs synchronous
//! schedule illustration for batch size 3, as an ASCII Gantt chart with
//! utilization numbers.

use easybo::policies::EasyBoAsyncPolicy;
use easybo::policies::EasyBoSyncPolicy;
use easybo_bench::opamp_blackbox;
use easybo_exec::{BlackBox, Schedule, VirtualExecutor};
use easybo_opt::sampling;
use rand::SeedableRng;

fn gantt(title: &str, schedule: &Schedule) {
    println!("\n--- {title} ---");
    let makespan = schedule.makespan();
    let width = 72.0;
    for w in 0..schedule.workers() {
        let mut line = vec![b'.'; width as usize + 1];
        for span in schedule.worker_spans(w) {
            let a = (span.start / makespan * width) as usize;
            let b = ((span.end / makespan * width) as usize).min(width as usize);
            let glyph = b"0123456789abcdefghijklmnopqrstuvwxyz"[span.task % 36];
            for c in line.iter_mut().take(b + 1).skip(a) {
                *c = glyph;
            }
        }
        println!("worker {w}: {}", String::from_utf8_lossy(&line));
    }
    println!(
        "makespan {:.0}s, utilization {:.1}%, idle {:.0}s",
        makespan,
        100.0 * schedule.utilization(),
        schedule.idle_time()
    );
}

fn main() {
    let bb = opamp_blackbox();
    let batch = 3;
    let evals = 18;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let init = sampling::latin_hypercube(bb.bounds(), 6, &mut rng);

    println!("Fig. 1 reproduction: sync vs async scheduling, batch size {batch}, {evals} sims");

    let mut sync_policy = EasyBoSyncPolicy::new(bb.bounds().clone(), true, 7);
    let sync = VirtualExecutor::new(batch).run_sync(&bb, &init, evals, &mut sync_policy);
    gantt("synchronous batch (barrier per round)", &sync.schedule);

    let mut async_policy = EasyBoAsyncPolicy::new(bb.bounds().clone(), true, 7);
    let asyn = VirtualExecutor::new(batch).run_async(&bb, &init, evals, &mut async_policy);
    gantt("asynchronous batch (EasyBO)", &asyn.schedule);

    println!(
        "\nasync finishes the same {evals} simulations {:.1}% sooner ({:.0}s vs {:.0}s)",
        100.0 * (sync.total_time() - asyn.total_time()) / sync.total_time(),
        asyn.total_time(),
        sync.total_time()
    );
}
