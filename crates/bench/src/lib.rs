//! Shared harness for the benchmark binaries that regenerate every table
//! and figure of the EasyBO paper.
//!
//! Each `benches/*.rs` target (run with `cargo bench -p easybo-bench`)
//! prints the corresponding paper artifact:
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `table1_opamp` | Table I — op-amp results & simulation time |
//! | `table2_class_e` | Table II — class-E PA results & simulation time |
//! | `fig1_schedule` | Fig. 1 — sync vs async schedule illustration |
//! | `fig2_acquisition` | Fig. 2 — weighted acquisition & w density |
//! | `fig4_opamp_trace` | Fig. 4 — op-amp best-FOM vs wall-clock, B = 15 |
//! | `fig6_class_e_trace` | Fig. 6 — class-E best-FOM vs wall-clock, B = 15 |
//! | `micro` | Criterion micro-benchmarks of the numerical kernels |
//!
//! Environment knobs:
//!
//! * `EASYBO_REPS` — repetitions per table cell (default 10; paper uses 20).
//! * `EASYBO_BATCHES` — comma-separated batch sizes (default `5,10,15`).
//! * `EASYBO_FAST=1` — smoke-test mode: 3 reps, halved budgets.
//! * `EASYBO_ABLATE=lambda` — adds the λ-sweep ablation rows to Table I.

use easybo::Algorithm;
use easybo_circuits::class_e::ClassEPa;
use easybo_circuits::ldo::Ldo;
use easybo_circuits::opamp::TwoStageOpAmp;
use easybo_circuits::ring_osc::RingOscillator;
use easybo_circuits::Circuit;
use easybo_exec::{BlackBox, CostedFunction, RunResult, SimTimeModel};
use easybo_linalg::{mean, sample_std};

/// Mean per-simulation cost of the op-amp testbench (seconds), calibrated
/// so 150 simulations ≈ the paper's 1h36m sequential time.
pub const OPAMP_SIM_SECONDS: f64 = 38.7;
/// Mean per-simulation cost of the class-E testbench (seconds), calibrated
/// so 450 simulations ≈ the paper's 6h35m sequential time.
pub const CLASS_E_SIM_SECONDS: f64 = 52.7;
/// Relative spread of simulation times (max-of-batch effects match the
/// paper's sync-vs-async gaps at this value).
pub const SIM_TIME_SPREAD: f64 = 0.25;
/// Mean per-simulation cost of the LDO testbench (seconds) — AC + load
/// transient, cheaper than the op-amp's full corner deck.
pub const LDO_SIM_SECONDS: f64 = 24.3;
/// Mean per-simulation cost of the ring-oscillator testbench (seconds) —
/// a transient to frequency lock plus phase-noise extraction.
pub const RING_OSC_SIM_SECONDS: f64 = 31.1;

/// Repetitions per cell (`EASYBO_REPS`, default 10, `EASYBO_FAST` → 3).
pub fn reps() -> usize {
    if fast_mode() {
        return 3;
    }
    std::env::var("EASYBO_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// Batch sizes to sweep (`EASYBO_BATCHES`, default `[5, 10, 15]`).
pub fn batch_sizes() -> Vec<usize> {
    std::env::var("EASYBO_BATCHES")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&b| b > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![5, 10, 15])
}

/// Whether smoke-test mode is active.
pub fn fast_mode() -> bool {
    std::env::var("EASYBO_FAST").is_ok_and(|v| v == "1")
}

/// Scales an evaluation budget down in fast mode.
pub fn scaled(budget: usize) -> usize {
    if fast_mode() {
        (budget / 2).max(30)
    } else {
        budget
    }
}

/// The op-amp benchmark as a [`BlackBox`] with the calibrated time model.
pub fn opamp_blackbox() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let amp = TwoStageOpAmp::new();
    let bounds = amp.bounds().clone();
    let time = SimTimeModel::new(&bounds, OPAMP_SIM_SECONDS, SIM_TIME_SPREAD, 2020);
    CostedFunction::new("two-stage-opamp", bounds, time, move |x: &[f64]| amp.fom(x))
}

/// The class-E benchmark as a [`BlackBox`] with the calibrated time model.
pub fn class_e_blackbox() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let pa = ClassEPa::new();
    let bounds = pa.bounds().clone();
    let time = SimTimeModel::new(&bounds, CLASS_E_SIM_SECONDS, SIM_TIME_SPREAD, 2021);
    CostedFunction::new("class-e-pa", bounds, time, move |x: &[f64]| pa.fom(x))
}

/// The LDO benchmark as a [`BlackBox`] with the calibrated time model.
pub fn ldo_blackbox() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let ldo = Ldo::new();
    let bounds = ldo.bounds().clone();
    let time = SimTimeModel::new(&bounds, LDO_SIM_SECONDS, SIM_TIME_SPREAD, 2022);
    CostedFunction::new("ldo", bounds, time, move |x: &[f64]| ldo.fom(x))
}

/// The ring-oscillator benchmark as a [`BlackBox`] with the calibrated
/// time model.
pub fn ring_osc_blackbox() -> CostedFunction<impl Fn(&[f64]) -> f64 + Send + Sync> {
    let vco = RingOscillator::new();
    let bounds = vco.bounds().clone();
    let time = SimTimeModel::new(&bounds, RING_OSC_SIM_SECONDS, SIM_TIME_SPREAD, 2023);
    CostedFunction::new("ring-oscillator", bounds, time, move |x: &[f64]| vco.fom(x))
}

/// One row of a paper-style results table.
#[derive(Debug, Clone, PartialEq)]
pub struct RowStats {
    /// Algorithm label (paper convention, e.g. `EasyBO-SP-5`).
    pub label: String,
    /// Best final FOM across repetitions.
    pub best: f64,
    /// Worst final FOM across repetitions.
    pub worst: f64,
    /// Mean final FOM.
    pub mean: f64,
    /// Sample standard deviation of final FOMs.
    pub std: f64,
    /// Mean total simulation time (virtual seconds).
    pub time_seconds: f64,
}

/// Summarizes repetition results into a table row.
pub fn summarize(label: impl Into<String>, runs: &[RunResult]) -> RowStats {
    let finals: Vec<f64> = runs.iter().map(|r| r.best_value()).collect();
    let times: Vec<f64> = runs.iter().map(|r| r.total_time()).collect();
    RowStats {
        label: label.into(),
        best: finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        worst: finals.iter().cloned().fold(f64::INFINITY, f64::min),
        mean: mean(&finals),
        std: sample_std(&finals),
        time_seconds: mean(&times),
    }
}

/// Formats seconds as the paper's `216h40m51s` / `21m19s` style.
pub fn format_hms(seconds: f64) -> String {
    let total = seconds.round().max(0.0) as u64;
    let (h, m, s) = (total / 3600, (total % 3600) / 60, total % 60);
    if h > 0 {
        format!("{h}h{m}m{s}s")
    } else if m > 0 {
        format!("{m}m{s}s")
    } else {
        format!("{s}s")
    }
}

/// Prints a paper-style results table.
pub fn print_table(title: &str, rows: &[RowStats]) {
    println!("\n=== {title} ===");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>8} {:>12}",
        "Algo", "Best", "Worst", "Mean", "Std", "Time"
    );
    for r in rows {
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>10.2} {:>8.2} {:>12}",
            r.label,
            r.best,
            r.worst,
            r.mean,
            r.std,
            format_hms(r.time_seconds)
        );
    }
}

/// Runs one algorithm `reps` times and returns the raw results.
#[allow(clippy::too_many_arguments)]
pub fn run_cell(
    algo: Algorithm,
    bb: &dyn BlackBox,
    batch: usize,
    max_evals: usize,
    n_init: usize,
    de_evals: usize,
    reps: usize,
    seed_base: u64,
) -> Vec<RunResult> {
    (0..reps)
        .map(|rep| {
            algo.run(
                bb,
                batch,
                max_evals,
                n_init,
                de_evals,
                seed_base.wrapping_add(rep as u64).wrapping_mul(2654435761),
            )
        })
        .collect()
}

/// Mean best-so-far curve across repetitions, sampled on `n_samples`
/// evenly spaced times over the slowest run. Times before a run's first
/// completion fall back to that run's first best value.
pub fn mean_trace(runs: &[RunResult], n_samples: usize) -> Vec<(f64, f64)> {
    let horizon = runs
        .iter()
        .map(|r| r.trace.total_time())
        .fold(0.0f64, f64::max);
    if horizon <= 0.0 || runs.is_empty() {
        return Vec::new();
    }
    (1..=n_samples)
        .map(|i| {
            let t = horizon * i as f64 / n_samples as f64;
            let avg = runs
                .iter()
                .map(|r| {
                    r.trace.best_at(t).unwrap_or_else(|| {
                        r.trace
                            .points()
                            .first()
                            .map(|p| p.best_so_far)
                            .unwrap_or(f64::NEG_INFINITY)
                    })
                })
                .sum::<f64>()
                / runs.len() as f64;
            (t, avg)
        })
        .collect()
}

/// Prints a best-so-far series in a plottable aligned format.
pub fn print_trace(label: &str, trace: &[(f64, f64)]) {
    println!("\n--- {label} (time_s, mean_best) ---");
    for (t, v) in trace {
        println!("{t:>12.1} {v:>12.3}");
    }
}

/// Time for the mean trace to first reach `target` (`None` if never).
pub fn time_to_target(trace: &[(f64, f64)], target: f64) -> Option<f64> {
    trace.iter().find(|(_, v)| *v >= target).map(|(t, _)| *t)
}

/// One baseline-vs-candidate measurement in a machine-readable
/// `BENCH_*.json` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Row label (e.g. `predict_batch_vs_scalar_small_n120_d6_m256`).
    pub name: String,
    /// Baseline wall-clock, nanoseconds (best of reps).
    pub baseline_ns: f64,
    /// Candidate wall-clock, nanoseconds (best of reps).
    pub candidate_ns: f64,
    /// Whether the candidate reproduced the baseline output bit for bit.
    pub identical: bool,
}

impl BenchRecord {
    /// Builds a record from seconds-denominated timings.
    pub fn from_seconds(
        name: impl Into<String>,
        baseline_s: f64,
        candidate_s: f64,
        identical: bool,
    ) -> Self {
        BenchRecord {
            name: name.into(),
            baseline_ns: baseline_s * 1e9,
            candidate_ns: candidate_s * 1e9,
            identical,
        }
    }

    /// Baseline-over-candidate speedup (`> 1` means the candidate is faster).
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.candidate_ns
    }

    /// Candidate-over-baseline relative overhead (`0.02` = 2% slower).
    pub fn overhead(&self) -> f64 {
        self.candidate_ns / self.baseline_ns - 1.0
    }
}

/// Worker threads available on this host.
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Renders the shared `BENCH_*.json` schema: every benchmark artifact
/// carries the same top-level fields (`bench`, `generated_by`, `env`,
/// `note`, `results`) so the regression tooling can diff reports without
/// per-bench parsers and knows the exact command that regenerates a stale
/// artifact. serde is stubbed in this workspace, so the JSON is formatted
/// by hand.
pub fn bench_report(bench: &str, reps: usize, note: &str, records: &[BenchRecord]) -> String {
    let entries: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"name\": \"{}\",\n      \"baseline_ns\": {:.0},\n      \
                 \"candidate_ns\": {:.0},\n      \"speedup\": {:.4},\n      \
                 \"identical\": {}\n    }}",
                r.name,
                r.baseline_ns,
                r.candidate_ns,
                r.speedup(),
                r.identical
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"{bench}\",\n  \
         \"generated_by\": \"cargo bench -p easybo-bench --bench {bench}\",\n  \
         \"env\": {{\n    \"reps\": {reps},\n    \
         \"host_threads\": {threads},\n    \"os\": \"{os}\"\n  }},\n  \"note\": \"{note}\",\n  \
         \"results\": [\n{rows}\n  ]\n}}\n",
        threads = host_threads(),
        os = std::env::consts::OS,
        rows = entries.join(",\n")
    )
}

/// Writes a bench report to the repository root; returns the path written.
pub fn write_bench_report(file_name: &str, json: &str) -> String {
    let path = format!("{}/../../{}", env!("CARGO_MANIFEST_DIR"), file_name);
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use easybo_exec::{Dataset, RunTrace, Schedule};

    fn fake_run(values: &[f64], dt: f64) -> RunResult {
        let mut data = Dataset::new();
        let mut trace = RunTrace::new();
        let mut schedule = Schedule::new(1);
        for (i, &v) in values.iter().enumerate() {
            let t0 = dt * i as f64;
            data.push(vec![i as f64], v);
            schedule.add(0, i, t0, t0 + dt);
            trace.record(t0 + dt, v);
        }
        RunResult {
            data,
            trace,
            schedule,
        }
    }

    #[test]
    fn summarize_computes_paper_statistics() {
        let runs = vec![fake_run(&[1.0, 3.0], 10.0), fake_run(&[2.0, 5.0], 10.0)];
        let row = summarize("X", &runs);
        assert_eq!(row.best, 5.0);
        assert_eq!(row.worst, 3.0);
        assert_eq!(row.mean, 4.0);
        assert!((row.std - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(row.time_seconds, 20.0);
    }

    #[test]
    fn format_hms_styles() {
        assert_eq!(format_hms(51.0), "51s");
        assert_eq!(format_hms(1279.0), "21m19s");
        assert_eq!(format_hms(780051.0), "216h40m51s");
        assert_eq!(format_hms(-5.0), "0s");
    }

    #[test]
    fn mean_trace_averages_runs() {
        let runs = vec![fake_run(&[1.0, 2.0], 10.0), fake_run(&[3.0, 4.0], 10.0)];
        let tr = mean_trace(&runs, 2);
        assert_eq!(tr.len(), 2);
        // At t=10: bests are 1 and 3 → 2; at t=20: 2 and 4 → 3.
        assert_eq!(tr[0], (10.0, 2.0));
        assert_eq!(tr[1], (20.0, 3.0));
    }

    #[test]
    fn time_to_target_finds_crossing() {
        let tr = vec![(10.0, 1.0), (20.0, 2.0), (30.0, 5.0)];
        assert_eq!(time_to_target(&tr, 2.0), Some(20.0));
        assert_eq!(time_to_target(&tr, 10.0), None);
    }

    #[test]
    fn blackboxes_have_expected_shapes() {
        let amp = opamp_blackbox();
        assert_eq!(amp.bounds().dim(), 10);
        let e = amp.evaluate(&amp.bounds().center());
        assert!(e.value.is_finite());
        assert!(e.cost > OPAMP_SIM_SECONDS * 0.8 && e.cost < OPAMP_SIM_SECONDS * 1.2);

        let pa = class_e_blackbox();
        assert_eq!(pa.bounds().dim(), 12);
        let e = pa.evaluate(&pa.bounds().center());
        assert!(e.value.is_finite());
        assert!(e.cost > CLASS_E_SIM_SECONDS * 0.8 && e.cost < CLASS_E_SIM_SECONDS * 1.2);

        let ldo = ldo_blackbox();
        assert_eq!(ldo.bounds().dim(), 8);
        let e = ldo.evaluate(&ldo.bounds().center());
        assert!(e.value.is_finite());
        assert!(e.cost > LDO_SIM_SECONDS * 0.8 && e.cost < LDO_SIM_SECONDS * 1.2);

        let vco = ring_osc_blackbox();
        assert_eq!(vco.bounds().dim(), 7);
        let e = vco.evaluate(&vco.bounds().center());
        assert!(e.value.is_finite());
        assert!(e.cost > RING_OSC_SIM_SECONDS * 0.8 && e.cost < RING_OSC_SIM_SECONDS * 1.2);
    }

    #[test]
    fn bench_report_renders_shared_schema() {
        let records = vec![
            BenchRecord::from_seconds("fast", 2e-3, 1e-3, true),
            BenchRecord::from_seconds("slow", 1e-3, 2e-3, false),
        ];
        assert!((records[0].speedup() - 2.0).abs() < 1e-12);
        assert!((records[1].overhead() - 1.0).abs() < 1e-12);
        let json = bench_report("unit", 5, "note text", &records);
        let parsed = easybo_telemetry::parse_json(&json).expect("valid JSON");
        assert_eq!(parsed.get("bench").and_then(|v| v.as_str()), Some("unit"));
        assert_eq!(
            parsed.get("generated_by").and_then(|v| v.as_str()),
            Some("cargo bench -p easybo-bench --bench unit")
        );
        let env = parsed.get("env").expect("env object");
        assert_eq!(env.get("reps").and_then(|v| v.as_f64()), Some(5.0));
        assert!(env.get("host_threads").and_then(|v| v.as_f64()).unwrap() >= 1.0);
        assert_eq!(
            env.get("os").and_then(|v| v.as_str()),
            Some(std::env::consts::OS)
        );
        let results = parsed.get("results").and_then(|v| v.as_array()).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("baseline_ns").and_then(|v| v.as_f64()),
            Some(2e6)
        );
        assert_eq!(
            results[0].get("speedup").and_then(|v| v.as_f64()),
            Some(2.0)
        );
    }

    #[test]
    fn env_knob_defaults() {
        // Do not set env vars here (tests run in parallel); just verify the
        // defaults parse.
        assert!(reps() >= 3);
        assert!(!batch_sizes().is_empty());
        assert!(scaled(100) >= 30);
    }
}
